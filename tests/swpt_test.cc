/**
 * @file
 * Software-only passthrough (swpt): behaviour and protection tests.
 *
 * The swpt architecture lets guests program real Intel-style
 * descriptor rings while every doorbell traps into a hypervisor
 * validator that audits the scatter-gather list against page
 * ownership / grant state before shadow-copying the descriptor onto
 * one shared NIC.  The Swpt suite checks the datapath (three-way
 * throughput, fault composition, determinism); the SwptProtection
 * suite runs the forged-descriptor attacks of paper section 3.3
 * against the validator and checks that no disallowed DMA ever
 * reaches memory.
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

Report
quickRun(SystemConfig cfg, sim::Time measure = sim::milliseconds(150))
{
    System sys(std::move(cfg));
    return sys.run(sim::milliseconds(40), measure);
}

SystemConfig
swptConfig(std::uint32_t guests)
{
    return SystemConfig::swPassthrough(guests).withNics(1);
}

} // namespace

// ------------------------------------------------------------ datapath ----

TEST(Swpt, TransmitSaturatesWithValidationCharged)
{
    auto r = quickRun(swptConfig(2));
    EXPECT_GT(r.mbps, 850.0);
    EXPECT_GT(r.swptDoorbellTraps, 0u);
    EXPECT_GT(r.swptDescValidated, 0u);
    EXPECT_EQ(r.swptDescRejected, 0u);
    EXPECT_GT(r.swptValidationUs, 0.0);
    // Validation burns hypervisor CPU that CDNA offloads to hardware.
    EXPECT_GT(r.hypPct, 1.0);
    EXPECT_EQ(r.dmaViolations, 0u);
    EXPECT_EQ(r.protectionFaults, 0u);
}

TEST(Swpt, ReceiveDemuxesToTheRightGuests)
{
    auto r = quickRun(swptConfig(2).receive());
    EXPECT_GT(r.mbps, 850.0);
    ASSERT_EQ(r.perGuestMbps.size(), 2u);
    // Software RX demux splits the shared NIC's stream per MAC.
    EXPECT_GT(r.perGuestMbps[0], 100.0);
    EXPECT_GT(r.perGuestMbps[1], 100.0);
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(Swpt, CountersZeroOutsideSwptMode)
{
    for (auto cfg : {SystemConfig::xenIntel(1).withNics(1),
                     SystemConfig::cdna(1).withNics(1)}) {
        auto r = quickRun(cfg, sim::milliseconds(60));
        EXPECT_EQ(r.swptDoorbellTraps, 0u) << r.label;
        EXPECT_EQ(r.swptDescValidated, 0u) << r.label;
        EXPECT_EQ(r.swptDescRejected, 0u) << r.label;
        EXPECT_DOUBLE_EQ(r.swptValidationUs, 0.0) << r.label;
    }
}

TEST(Swpt, BeatsXenCopyPathOnReceiveFanIn)
{
    // Validation is per-descriptor work; netback's copy path is
    // per-byte and serialises all guests through dom0.  With several
    // guests receiving, swpt holds the wire while Xen falls away.
    auto xen = quickRun(SystemConfig::xenIntel(4).withNics(1).receive());
    auto swpt = quickRun(swptConfig(4).receive());
    EXPECT_GT(swpt.mbps, xen.mbps * 1.2);
}

TEST(Swpt, TcpTransportComposes)
{
    auto r = quickRun(swptConfig(1).transport(kTcp));
    EXPECT_GT(r.mbps, 850.0);
    EXPECT_EQ(r.tcpRetransSegs, 0u);
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(Swpt, HeaderOnlyDescriptorsAreNotRejected)
{
    // A TX descriptor with an empty scatter-gather list is a
    // header-only frame (a bare ACK): it references no payload memory,
    // so there is nothing to audit and it must pass validation.
    System sys(swptConfig(1));
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));

    auto *v = sys.swptValidator(0);
    ASSERT_NE(v, nullptr);
    auto port = v->addGuest(*sys.guestDomain(0),
                            net::MacAddr::fromId(901), [] {});
    std::uint64_t validated_before = v->descValidated();
    std::uint64_t rejected_before = v->descRejected();

    vmm::SwptValidator::TxReq req;
    req.pkt.dst = sys.peer(0).mac();
    req.pkt.payloadBytes = 0;
    std::vector<vmm::SwptValidator::TxReq> batch;
    batch.push_back(std::move(req));
    v->txDoorbell(port, std::move(batch));
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));

    // Background guest traffic validates more descriptors in the same
    // window, so only a lower bound holds for the validated counter.
    EXPECT_GE(v->descValidated(), validated_before + 1);
    EXPECT_EQ(v->descRejected(), rejected_before);
}

// --------------------------------------------------- fault composition ----

TEST(Swpt, ValidatorStallRecoversAfterRestart)
{
    // killDriverDomain stalls the hypervisor-resident validator:
    // doorbells latch unprocessed until the restart drains them.  The
    // guests must come back without losing protection state.
    SystemConfig cfg = swptConfig(2).withFaults(
        FaultPlan{}.killingDriverDomain(60.0));
    auto faulted = quickRun(cfg);
    auto healthy = quickRun(swptConfig(2));
    EXPECT_LT(faulted.mbps, healthy.mbps);
    EXPECT_GT(faulted.mbps, 0.3 * healthy.mbps); // restarted and drained
    EXPECT_EQ(faulted.dmaViolations, 0u);
    EXPECT_EQ(faulted.swptDescRejected, 0u);
}

TEST(Swpt, GuestKillLeavesVictimRunning)
{
    SystemConfig cfg = swptConfig(2).withFaults(
        FaultPlan{}.killingGuest(0, 60.0));
    System sys(cfg);
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(150));
    auto healthy = quickRun(swptConfig(2));

    ASSERT_EQ(r.perGuestMbps.size(), 2u);
    // The dead guest's port is inert; the survivor takes the wire.
    EXPECT_FALSE(sys.swptValidator(0)->guestActive(0));
    EXPECT_LT(r.perGuestMbps[0], 0.5 * healthy.perGuestMbps[0]);
    EXPECT_GE(r.perGuestMbps[1], healthy.perGuestMbps[1]);
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(Swpt, FirmwareRebootDropsInFlightAndRecovers)
{
    SystemConfig cfg = swptConfig(2).withFaults(
        FaultPlan{}.rebootingFirmware(0, 60.0));
    auto r = quickRun(cfg);
    // Outage plus recovery: traffic resumes after the reboot delay and
    // the zero-byte in-flight completions recover every TX window.
    EXPECT_GT(r.mbps, 400.0);
    EXPECT_GT(r.swptDoorbellTraps, 0u);
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(Swpt, DeterministicAcrossRuns)
{
    auto a = quickRun(swptConfig(2), sim::milliseconds(80));
    auto b = quickRun(swptConfig(2), sim::milliseconds(80));
    EXPECT_DOUBLE_EQ(a.mbps, b.mbps);
    EXPECT_DOUBLE_EQ(a.hypPct, b.hypPct);
    EXPECT_DOUBLE_EQ(a.swptValidationUs, b.swptValidationUs);
    EXPECT_EQ(a.swptDoorbellTraps, b.swptDoorbellTraps);
    EXPECT_EQ(a.swptDescValidated, b.swptDescValidated);
}

// --------------------------------------------- forged-descriptor attacks ----

namespace {

/** Two-guest swpt system; guest 0 is the attacker, 1 the victim.
 *  Returns a validator port fully under the attacker's control
 *  (mirrors a guest writing to its own ring pages directly, without
 *  its driver's cooperation). */
struct SwptAttackRig
{
    System sys;
    vmm::SwptValidator *v;
    vmm::SwptValidator::GuestId port;

    SwptAttackRig()
        : sys(SystemConfig::swPassthrough(2).withNics(1))
    {
        sys.start();
        sys.ctx().events().runUntil(sim::milliseconds(5));
        v = sys.swptValidator(0);
        port = v->addGuest(*sys.guestDomain(0),
                           net::MacAddr::fromId(777), [] {});
    }

    /** Forge one TX descriptor whose sg names @p page. */
    void
    forge(mem::PageNum page)
    {
        vmm::SwptValidator::TxReq req;
        req.sg = {{mem::addrOf(page), 1460}};
        req.pkt.dst = sys.peer(0).mac();
        req.pkt.payloadBytes = 1460;
        req.pkt.hostSg = req.sg;
        std::vector<vmm::SwptValidator::TxReq> batch;
        batch.push_back(std::move(req));
        v->txDoorbell(port, std::move(batch));
        sys.ctx().events().runUntil(sys.ctx().now() +
                                    sim::milliseconds(5));
    }
};

} // namespace

TEST(SwptProtection, ForgedForeignFrameRejected)
{
    SwptAttackRig rig;
    auto *attacker = rig.sys.guestDomain(0);
    auto *victim = rig.sys.guestDomain(1);

    mem::PageNum victim_page = rig.sys.mem().allocOne(victim->id());
    std::uint64_t rejected_before = rig.v->descRejected();
    rig.forge(victim_page);

    EXPECT_EQ(rig.v->descRejected(), rejected_before + 1);
    EXPECT_GE(rig.sys.hv().faultCount(attacker->id(),
                                      vmm::Fault::kNotOwner),
              1u);
    // The rejection surfaced as an error completion, so a real driver's
    // TX window would not leak.
    auto comp = rig.v->takeCompletions(rig.port);
    ASSERT_EQ(comp.count, 1u);
    EXPECT_EQ(comp.bytes.at(0), 0u);
    // The victim's page was never pinned, shadowed, or DMA-touched.
    EXPECT_EQ(rig.sys.mem().refCount(victim_page), 0u);
    EXPECT_EQ(rig.sys.mem().violationCount(), 0u);
}

TEST(SwptProtection, UnmappedGrantPageRejected)
{
    SwptAttackRig rig;
    auto *victim = rig.sys.guestDomain(1);

    // A page that went back to the free pool: the attacker holds no
    // ownership and no grant mapping for it.
    mem::PageNum freed = rig.sys.mem().allocOne(victim->id());
    ASSERT_TRUE(rig.sys.mem().release(freed));
    std::uint64_t rejected_before = rig.v->descRejected();
    rig.forge(freed);

    EXPECT_EQ(rig.v->descRejected(), rejected_before + 1);
    EXPECT_EQ(rig.sys.mem().violationCount(), 0u);
}

TEST(SwptProtection, RevokedQuarantinedPageRejected)
{
    SwptAttackRig rig;
    auto *victim = rig.sys.guestDomain(1);
    auto *dom0 = rig.sys.driverDomain();
    auto &grants = rig.sys.hv().grants();

    // The victim granted a page to dom0, dom0 crashed mid-DMA, and the
    // revocation left the page pinned in quarantine.  The attacker
    // replays a descriptor naming it while it sits there.
    mem::PageNum page = rig.sys.mem().allocOne(victim->id());
    auto ref = grants.grantAccess(victim->id(), dom0->id(), page);
    ASSERT_NE(ref, mem::kInvalidGrant);
    mem::PageNum mapped = 0;
    ASSERT_TRUE(grants.mapGrant(ref, dom0->id(), &mapped));
    auto rs = grants.revokeMappingsOf(dom0->id());
    ASSERT_EQ(rs.quarantined, 1u);

    std::uint64_t rejected_before = rig.v->descRejected();
    rig.forge(page);

    EXPECT_EQ(rig.v->descRejected(), rejected_before + 1);
    // Quarantine is undisturbed: the page stays pinned for the dead
    // mapper's in-flight DMA until the drain, and nothing leaked.
    EXPECT_EQ(grants.quarantinedPages(), 1u);
    EXPECT_GE(rig.sys.mem().refCount(page), 1u);
    EXPECT_EQ(rig.sys.mem().violationCount(), 0u);
}

TEST(SwptProtection, RejectionsCountedAndVictimUnaffected)
{
    // The attack above, repeated under live traffic and measured
    // through the report: rejections are counted, the victim guest's
    // throughput is preserved, and no violation reaches memory.
    auto healthy = quickRun(swptConfig(2));

    SystemConfig cfg = swptConfig(2);
    System sys(cfg);
    sys.ctx().events().schedule(sim::milliseconds(60), [&sys] {
        auto *v = sys.swptValidator(0);
        auto port = v->addGuest(*sys.guestDomain(0),
                                net::MacAddr::fromId(778), [] {});
        auto *victim = sys.guestDomain(1);
        for (int i = 0; i < 32; ++i) {
            vmm::SwptValidator::TxReq req;
            req.sg = {{mem::addrOf(sys.mem().allocOne(victim->id())),
                       1460}};
            req.pkt.dst = sys.peer(0).mac();
            req.pkt.payloadBytes = 1460;
            std::vector<vmm::SwptValidator::TxReq> batch;
            batch.push_back(std::move(req));
            v->txDoorbell(port, std::move(batch));
        }
    });
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(150));

    EXPECT_GE(r.swptDescRejected, 32u);
    EXPECT_EQ(r.dmaViolations, 0u);
    ASSERT_EQ(r.perGuestMbps.size(), 2u);
    EXPECT_GE(r.perGuestMbps[1], 0.9 * healthy.perGuestMbps[1]);
}
