/**
 * @file
 * Unit tests for the hypervisor substrate: domains, event channels
 * (pending-bit merge semantics), hypercalls, interrupt dispatch, and
 * fault recording.
 */

#include <gtest/gtest.h>

#include "cpu/sim_cpu.hh"
#include "mem/phys_memory.hh"
#include "sim/sim_object.hh"
#include "vmm/hypervisor.hh"

using namespace cdna;
using namespace cdna::vmm;

namespace {

struct VmmFixture : ::testing::Test
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 1024};
    cpu::SimCpu cpu{ctx, "cpu",
                    [] {
                        cpu::CpuParams p;
                        p.domainSwitchCost = 0;
                        p.cacheColdSurcharge = 0;
                        p.cacheContentionAlpha = 0;
                        return p;
                    }()};
    Hypervisor hv{ctx, cpu, mem};
};

} // namespace

TEST_F(VmmFixture, DomainsGetUniqueIds)
{
    Domain &d0 = hv.createDomain(Domain::Kind::kDriver, "dom0");
    Domain &d1 = hv.createDomain(Domain::Kind::kGuest, "guest0");
    EXPECT_NE(d0.id(), d1.id());
    EXPECT_EQ(hv.domain(d0.id()), &d0);
    EXPECT_EQ(hv.domain(d1.id()), &d1);
    EXPECT_EQ(hv.domain(999), nullptr);
    EXPECT_EQ(d0.kind(), Domain::Kind::kDriver);
    EXPECT_EQ(d1.kind(), Domain::Kind::kGuest);
}

TEST_F(VmmFixture, GuestVcpusContendDriverDoesNot)
{
    Domain &drv = hv.createDomain(Domain::Kind::kDriver, "dom0");
    Domain &g = hv.createDomain(Domain::Kind::kGuest, "g");
    EXPECT_FALSE(drv.vcpu().contends());
    EXPECT_TRUE(g.vcpu().contends());
}

TEST_F(VmmFixture, EventChannelDeliversUpcall)
{
    Domain &g = hv.createDomain(Domain::Kind::kGuest, "g");
    int handled = 0;
    EventChannel &ch = hv.createChannel(g, sim::microseconds(1),
                                        [&] { ++handled; });
    EXPECT_TRUE(ch.notify());
    ctx.events().run();
    EXPECT_EQ(handled, 1);
    EXPECT_EQ(g.virtIrqCount(), 1u);
    // The upcall entry cost landed in the guest's OS bucket.
    EXPECT_EQ(cpu.profile().domainTime(g.id(), cpu::Bucket::kOs),
              sim::microseconds(1));
}

TEST_F(VmmFixture, PendingChannelMergesNotifications)
{
    // The batching mechanism behind the paper's scalability curves:
    // notifying an already-pending channel must not schedule another
    // upcall.
    Domain &g = hv.createDomain(Domain::Kind::kGuest, "g");
    int handled = 0;
    EventChannel &ch = hv.createChannel(g, 0, [&] { ++handled; });
    EXPECT_TRUE(ch.notify());
    EXPECT_FALSE(ch.notify());
    EXPECT_FALSE(ch.notify());
    EXPECT_TRUE(ch.pending());
    ctx.events().run();
    EXPECT_EQ(handled, 1);
    EXPECT_EQ(g.virtIrqCount(), 1u);
    EXPECT_EQ(ch.notifyCount(), 3u);

    // After the handler ran, a new notify schedules again.
    EXPECT_TRUE(ch.notify());
    ctx.events().run();
    EXPECT_EQ(handled, 2);
}

TEST_F(VmmFixture, HypercallChargesOverheadPlusCost)
{
    hv.createDomain(Domain::Kind::kGuest, "g");
    bool ran = false;
    hv.hypercall(sim::microseconds(3), [&] { ran = true; });
    ctx.events().run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(cpu.profile().hypervisor(),
              hv.params().hypercallOverhead + sim::microseconds(3));
    EXPECT_EQ(hv.hypercallCount(), 1u);
}

TEST_F(VmmFixture, PhysicalInterruptRunsIsr)
{
    bool decoded = false;
    hv.physicalInterrupt(sim::microseconds(2), [&] { decoded = true; });
    ctx.events().run();
    EXPECT_TRUE(decoded);
    EXPECT_EQ(hv.physIrqCount(), 1u);
    EXPECT_EQ(cpu.profile().hypervisor(),
              hv.params().physIrqDispatch + sim::microseconds(2));
}

TEST_F(VmmFixture, NotifyChannelChargesEvtchnPath)
{
    Domain &g = hv.createDomain(Domain::Kind::kGuest, "g");
    EventChannel &ch = hv.createChannel(g, 0, {});
    hv.notifyChannel(ch);
    ctx.events().run();
    EXPECT_EQ(g.virtIrqCount(), 1u);
    EXPECT_EQ(cpu.profile().hypervisor(),
              hv.params().hypercallOverhead + hv.params().evtchnSend +
                  hv.params().virtIrqDeliver);
}

TEST_F(VmmFixture, FaultRecording)
{
    Domain &g = hv.createDomain(Domain::Kind::kGuest, "g");
    hv.recordFault(g.id(), Fault::kBadSeqno);
    hv.recordFault(g.id(), Fault::kBadSeqno);
    hv.recordFault(g.id(), Fault::kNotOwner);
    EXPECT_EQ(hv.faultCount(), 3u);
    EXPECT_EQ(hv.faultCount(g.id(), Fault::kBadSeqno), 2u);
    EXPECT_EQ(hv.faultCount(g.id(), Fault::kNotOwner), 1u);
    EXPECT_EQ(hv.faultCount(g.id(), Fault::kRingFull), 0u);
}

TEST_F(VmmFixture, FaultNamesAreStable)
{
    EXPECT_STREQ(faultName(Fault::kNone), "none");
    EXPECT_STREQ(faultName(Fault::kNotOwner), "not-owner");
    EXPECT_STREQ(faultName(Fault::kBadSeqno), "bad-seqno");
    EXPECT_STREQ(faultName(Fault::kBadContext), "bad-context");
    EXPECT_STREQ(faultName(Fault::kRingFull), "ring-full");
}

TEST_F(VmmFixture, GrantsAccessibleThroughHypervisor)
{
    Domain &g = hv.createDomain(Domain::Kind::kGuest, "g");
    mem::PageNum p = mem.allocOne(g.id());
    mem::GrantRef ref = hv.grants().grantAccess(g.id(), 0xEE, p);
    EXPECT_NE(ref, mem::kInvalidGrant);
}
