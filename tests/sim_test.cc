/**
 * @file
 * Unit tests for the simulation kernel: time, event queue, RNG, stats.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/metrics_registry.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/time.hh"
#include "sim/trace.hh"

using namespace cdna::sim;

// ---------------------------------------------------------------- time ----

TEST(Time, UnitConversions)
{
    EXPECT_EQ(kNanosecond, 1000);
    EXPECT_EQ(kMicrosecond, 1000 * 1000);
    EXPECT_EQ(seconds(1.0), kSecond);
    EXPECT_EQ(milliseconds(2.5), 2500 * kMicrosecond);
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(toMicroseconds(kMillisecond), 1000.0);
    EXPECT_DOUBLE_EQ(toNanoseconds(kMicrosecond), 1000.0);
}

TEST(Time, FractionalConstruction)
{
    EXPECT_EQ(nanoseconds(0.5), 500);
    EXPECT_EQ(microseconds(0.001), kNanosecond);
}

TEST(Time, FormatPicksSensibleUnit)
{
    EXPECT_NE(formatTime(seconds(2.0)).find(" s"), std::string::npos);
    EXPECT_NE(formatTime(milliseconds(3.0)).find("ms"), std::string::npos);
    EXPECT_NE(formatTime(microseconds(3.0)).find("us"), std::string::npos);
    EXPECT_NE(formatTime(nanoseconds(3.0)).find("ns"), std::string::npos);
    EXPECT_NE(formatTime(1).find("ps"), std::string::npos);
    EXPECT_EQ(formatTime(-kSecond)[0], '-');
}

// --------------------------------------------------------- event queue ----

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, EqualTimesFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // second cancel fails
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, RunUntilAdvancesClockToHorizon)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(100, [&] { ++count; });
    EXPECT_EQ(eq.runUntil(50), 1u);
    EXPECT_EQ(eq.now(), 50);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.runUntil(100), 1u);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.schedule(1, chain);
    };
    eq.schedule(1, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 10);
}

TEST(EventQueue, PendingCountTracksLiveEvents)
{
    EventQueue eq;
    EventId a = eq.schedule(5, [] {});
    eq.schedule(6, [] {});
    EXPECT_EQ(eq.pendingCount(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pendingCount(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, NextEventTimeSkipsCancelled)
{
    EventQueue eq;
    EventId a = eq.schedule(5, [] {});
    eq.schedule(9, [] {});
    eq.cancel(a);
    EXPECT_EQ(eq.nextEventTime(), 9);
}

TEST(EventQueue, NextEventTimeEmptyIsMax)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTime(), std::numeric_limits<Time>::max());
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, DispatchedCountAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.dispatchedCount(), 7u);
}

TEST(EventQueue, CancelAfterDispatchFails)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(10, [&] { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, RunUntilOnEmptyQueueAdvancesClock)
{
    EventQueue eq;
    EXPECT_EQ(eq.runUntil(77), 0u);
    EXPECT_EQ(eq.now(), 77);
    // The horizon never moves the clock backwards.
    EXPECT_EQ(eq.runUntil(50), 0u);
    EXPECT_EQ(eq.now(), 77);
}

TEST(EventQueue, CancelledEventStillCountsTowardNothing)
{
    EventQueue eq;
    EventId id = eq.schedule(5, [] {});
    eq.cancel(id);
    eq.run();
    EXPECT_EQ(eq.dispatchedCount(), 0u);
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
    EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(13);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(Rng, ForkIndependence)
{
    Rng a(3);
    Rng child = a.fork();
    // The child stream must not mirror the parent stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == child.next())
            ++same;
    EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------- stats ----

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    EXPECT_DOUBLE_EQ(c.rate(seconds(2.0)), 5.0);
    EXPECT_DOUBLE_EQ(c.rate(0), 0.0);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, SampleStatsMoments)
{
    SampleStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.record(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Stats, HistogramQuantiles)
{
    Histogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.record(i);
    EXPECT_EQ(h.count(), 1000u);
    // Median of [0,1000) lies in the 512-1023 bucket.
    EXPECT_GE(h.quantile(0.5), 511u);
    EXPECT_LE(h.quantile(0.99), 1023u);
    EXPECT_EQ(h.quantile(0.0), 0u);
}

TEST(Stats, HistogramQuantileFullRange)
{
    Histogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.record(i);
    // Values 0..511 fill buckets 0..9 (512 of 1000 samples), so the
    // median is the upper bound of bucket 9.
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(0.5), 511u);
    EXPECT_EQ(h.quantile(0.99), 1023u);
    // Regression: q = 1.0 used to fall off the bucket loop and return
    // UINT64_MAX; it must be the top occupied bucket's upper bound.
    EXPECT_EQ(h.quantile(1.0), 1023u);
}

TEST(Stats, HistogramQuantileClampsMalformedInput)
{
    Histogram h;
    h.record(5); // bucket 3, upper bound 7
    EXPECT_EQ(h.quantile(-0.5), 7u);
    EXPECT_EQ(h.quantile(2.0), 7u);
    EXPECT_EQ(h.quantile(std::nan("")), 7u);
}

TEST(Stats, HistogramEmptyQuantileIsZero)
{
    Histogram h;
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Stats, StatGroupDump)
{
    StatGroup g;
    Counter &c = g.addCounter("events");
    SampleStats &s = g.addSamples("latency");
    c.inc(3);
    s.record(1.5);
    std::string dump = g.dump("nic.");
    EXPECT_NE(dump.find("nic.events 3"), std::string::npos);
    EXPECT_NE(dump.find("nic.latency"), std::string::npos);
}

TEST(Stats, StatGroupDumpIncludesSumAndStddev)
{
    StatGroup g;
    SampleStats &s = g.addSamples("lat");
    s.record(2.0);
    s.record(4.0);
    std::string dump = g.dump();
    EXPECT_NE(dump.find("sum=6.000"), std::string::npos);
    EXPECT_NE(dump.find("stddev=1.000"), std::string::npos);
}

TEST(Stats, StatGroupFindByName)
{
    StatGroup g;
    Counter &c = g.addCounter("hits");
    c.inc(4);
    ASSERT_NE(g.findCounter("hits"), nullptr);
    EXPECT_EQ(g.findCounter("hits")->value(), 4u);
    EXPECT_EQ(g.findCounter("misses"), nullptr);
    EXPECT_EQ(g.findSamples("hits"), nullptr);
}

TEST(StatsDeathTest, StatGroupDuplicateNamePanics)
{
    StatGroup g;
    g.addCounter("n");
    g.addSamples("lat");
    EXPECT_DEATH(g.addCounter("n"), "assertion failed");
    EXPECT_DEATH(g.addSamples("n"), "assertion failed");
    EXPECT_DEATH(g.addCounter("lat"), "assertion failed");
}

// ----------------------------------------------------------- sim object ----

TEST(SimObject, RegistersWithContext)
{
    SimContext ctx(5);

    class Widget : public SimObject
    {
      public:
        explicit Widget(SimContext &c) : SimObject(c, "widget") {}
    };

    Widget w(ctx);
    ASSERT_EQ(ctx.objects().size(), 1u);
    EXPECT_EQ(ctx.objects()[0]->name(), "widget");
    w.stats().addCounter("n").inc(2);
    EXPECT_NE(ctx.dumpStats().find("widget.n 2"), std::string::npos);
}

TEST(SimObject, NowTracksEventQueue)
{
    SimContext ctx;
    ctx.events().schedule(100, [] {});
    ctx.events().run();
    EXPECT_EQ(ctx.now(), 100);
}

// --------------------------------------------------------------- tracer ----

TEST(Tracer, DisabledByDefaultAndLanesIntern)
{
    Tracer t;
    Tracer::LaneId a = t.lane("cpu0");
    Tracer::LaneId b = t.lane("nic0");
    EXPECT_FALSE(t.enabled());
    EXPECT_FALSE(t.wants(a));
    EXPECT_EQ(t.lane("cpu0"), a); // idempotent
    EXPECT_NE(a, b);
    EXPECT_EQ(t.laneCount(), 2u);
    EXPECT_EQ(t.laneName(b), "nic0");
    // Macros record nothing while disabled (and skip arg evaluation).
    int evals = 0;
    CDNA_TRACE_SPAN(t, a, "x", (++evals, 0), 10);
    EXPECT_EQ(evals, 0);
    EXPECT_EQ(t.eventCount(), 0u);
}

TEST(Tracer, RecordsSpansInstantsAndCounters)
{
    Tracer t;
    Tracer::LaneId cpu = t.lane("cpu0");
    t.enable();
    EXPECT_TRUE(t.wants(cpu));
    t.span(cpu, "task", 100, 50, "bytes", 4096);
    t.instant(cpu, "irq", 160);
    t.counter(cpu, "occupancy", 170, 3.0);
    EXPECT_EQ(t.eventCount(), 3u);
    std::string json = t.toChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"task\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(Tracer, FilterSelectsLanesBySubstring)
{
    Tracer t;
    Tracer::LaneId cpu = t.lane("cpu0");
    Tracer::LaneId nic = t.lane("cdna0.fw");
    t.enable();
    t.setFilter("cdna,hypervisor");
    EXPECT_FALSE(t.wants(cpu));
    EXPECT_TRUE(t.wants(nic));
    // Lanes interned after the filter is set are matched too.
    Tracer::LaneId hv = t.lane("hypervisor");
    EXPECT_TRUE(t.wants(hv));
    // Clearing the filter re-admits everything.
    t.setFilter("");
    EXPECT_TRUE(t.wants(cpu));
}

TEST(Tracer, RingBufferWrapsAndCountsDrops)
{
    Tracer t;
    Tracer::LaneId cpu = t.lane("cpu0");
    t.enable(/*capacity=*/4);
    for (int i = 0; i < 6; ++i)
        t.span(cpu, "e", i * 10, 5);
    EXPECT_EQ(t.eventCount(), 4u);
    EXPECT_EQ(t.droppedCount(), 2u);
    // Oldest two events were overwritten; ts is exported in us.
    std::string json = t.toChromeJson();
    EXPECT_EQ(json.find("\"ts\":0.000000"), std::string::npos); // t=0 gone
    EXPECT_EQ(json.find("\"ts\":0.000010"), std::string::npos); // t=10ps gone
    EXPECT_NE(json.find("\"ts\":0.000020"), std::string::npos); // t=20ps kept
    EXPECT_NE(json.find("\"ts\":0.000050"), std::string::npos); // t=50ps kept
}

TEST(Tracer, ClearKeepsLanesAndFilter)
{
    Tracer t;
    Tracer::LaneId cpu = t.lane("cpu0");
    t.enable();
    t.span(cpu, "e", 0, 1);
    t.clear();
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.laneCount(), 1u);
    EXPECT_TRUE(t.wants(cpu));
}

// ----------------------------------------------------- metrics registry ----

TEST(MetricsRegistry, PeriodicSamplingRecordsSeries)
{
    SimContext ctx;
    MetricsRegistry m(ctx);
    double value = 1.0;
    m.addGauge("test.gauge", [&] { return value; });
    EXPECT_EQ(m.gaugeCount(), 1u);
    m.startSampling(10);
    EXPECT_TRUE(m.sampling());
    ctx.events().schedule(15, [&] { value = 2.0; });
    ctx.events().runUntil(35);
    const auto &pts = m.series("test.gauge");
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_EQ(pts[0], (std::pair<Time, double>{10, 1.0}));
    EXPECT_EQ(pts[1], (std::pair<Time, double>{20, 2.0}));
    EXPECT_EQ(pts[2], (std::pair<Time, double>{30, 2.0}));
    m.stopSampling();
    ctx.events().runUntil(100);
    EXPECT_EQ(pts.size(), 3u);
    EXPECT_FALSE(m.sampling());
}

TEST(MetricsRegistry, JsonFederatesComponentStats)
{
    SimContext ctx;

    class Widget : public SimObject
    {
      public:
        explicit Widget(SimContext &c) : SimObject(c, "widget")
        {
            stats().addCounter("hits").inc(7);
            stats().addSamples("lat").record(2.5);
        }
    };

    Widget w(ctx);
    MetricsRegistry m(ctx);
    m.addGauge("g", [] { return 1.5; });
    m.sampleOnce();
    std::string json = m.toJson();
    EXPECT_NE(json.find("\"widget\""), std::string::npos);
    EXPECT_NE(json.find("\"hits\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"lat\""), std::string::npos);
    EXPECT_NE(json.find("\"stddev\""), std::string::npos);
    EXPECT_NE(json.find("\"timeseries\""), std::string::npos);
    EXPECT_NE(json.find("\"g\": [[0, 1.5]"), std::string::npos);
}

TEST(MetricsRegistry, UnknownSeriesIsEmpty)
{
    SimContext ctx;
    MetricsRegistry m(ctx);
    EXPECT_TRUE(m.series("nope").empty());
}
