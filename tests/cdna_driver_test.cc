/**
 * @file
 * Unit tests for the CDNA guest driver: protected transmit/receive
 * through the hypercall path, doorbells, completion handling, ring
 * flow control, and RX buffer recycling.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/cdna_driver.hh"
#include "net/eth_link.hh"
#include "net/traffic_peer.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

struct DriverFixture : ::testing::TestWithParam<bool>
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 8192};
    cpu::SimCpu cpu{ctx, "cpu"};
    vmm::Hypervisor hv{ctx, cpu, mem};
    mem::PciBus bus{ctx, "pci"};
    net::EthLink link{ctx, "eth"};
    net::TrafficPeer peer{ctx, "peer", link};
    CostModel costs;
    CdnaNic nic{ctx, "cdna", bus, mem, 0, link,
                [] {
                    CdnaNicParams p;
                    p.seqnoCheck = true;
                    return p;
                }()};

    vmm::Domain *guest = nullptr;
    std::unique_ptr<DmaProtection> prot;
    std::unique_ptr<CdnaGuestDriver> drv;
    vmm::EventChannel *channel = nullptr;

    /** Build the full per-context plumbing the way System does. */
    void
    buildDriver(bool protection)
    {
        guest = &hv.createDomain(vmm::Domain::Kind::kGuest, "g");
        prot = std::make_unique<DmaProtection>(ctx, hv, costs, protection);
        auto cxt = nic.allocContext(guest->id(), net::MacAddr::fromId(5));
        ASSERT_TRUE(cxt.has_value());
        nic.configureContextRings(
            *cxt, 32, mem::addrOf(mem.allocOne(guest->id())), 32,
            mem::addrOf(mem.allocOne(guest->id())));
        nic.setStatusPage(*cxt, mem::addrOf(mem.allocOne(guest->id())));
        mem::PageNum intr = mem.allocOne(mem::kDomHypervisor);
        nic.setInterruptRing(mem::addrOf(intr));

        drv = std::make_unique<CdnaGuestDriver>(ctx, "drv", *guest, nic,
                                                *cxt, *prot, costs,
                                                net::MacAddr::fromId(5));
        channel = &hv.createChannel(*guest, costs.irqEntry,
                                    [this] { drv->handleIrq(); });
        nic.setIrqLine([this] {
            hv.physicalInterrupt(0, [this] {
                auto *ring = nic.interruptRing();
                while (!ring->empty()) {
                    ring->pop();
                    hv.deliverVirtIrq(*channel);
                }
            });
        });
        drv->attach();
        ctx.events().run(); // initial RX post settles
    }

    net::Packet
    makePacket(std::uint32_t bytes)
    {
        net::Packet p;
        p.src = drv->mac();
        p.dst = peer.mac();
        p.payloadBytes = bytes;
        p.srcDomain = guest->id();
        mem::PageNum page = mem.allocOne(guest->id());
        p.hostSg = {{mem::addrOf(page), bytes}};
        return p;
    }
};

} // namespace

TEST_F(DriverFixture, TransmitThroughProtectedPath)
{
    buildDriver(true);
    for (int i = 0; i < 5; ++i)
        drv->transmit(makePacket(1000));
    drv->flush();
    ctx.events().run();

    EXPECT_EQ(peer.payloadReceived(), 5000u);
    EXPECT_EQ(mem.violationCount(), 0u);
    EXPECT_GE(prot->enqueueCalls(), 1u);
    EXPECT_GE(prot->pagesPinned(), 5u); // every TX page was pinned
    EXPECT_GE(drv->doorbells(), 1u);
}

TEST_F(DriverFixture, TxCompletionsReachTheStack)
{
    buildDriver(true);
    std::uint64_t completed = 0;
    drv->setTxCompleteHandler([&](std::uint64_t b) { completed += b; });
    drv->transmit(makePacket(800));
    drv->transmit(makePacket(800));
    drv->flush();
    ctx.events().run();
    EXPECT_EQ(completed, 1600u);
}

TEST_F(DriverFixture, ReceiveIntoRecycledBuffers)
{
    buildDriver(true);
    std::vector<net::Packet> got;
    drv->setRxHandler([&](net::Packet p) { got.push_back(std::move(p)); });

    net::Packet p;
    p.src = peer.mac();
    p.dst = drv->mac();
    p.payloadBytes = 1200;
    for (int i = 0; i < 40; ++i) // more than one ring lap of 32
        link.port(0).send(p);
    ctx.events().run();

    EXPECT_EQ(got.size(), 40u);
    for (const auto &pkt : got) {
        EXPECT_EQ(pkt.payloadBytes, 1200u);
        ASSERT_FALSE(pkt.hostSg.empty());
        EXPECT_TRUE(mem.ownedBy(mem::pageOf(pkt.hostSg[0].addr),
                                guest->id()));
    }
    EXPECT_EQ(mem.violationCount(), 0u);
    EXPECT_EQ(nic.rxDropNoDesc(), 0u); // recycling kept pace
}

TEST_F(DriverFixture, CanTransmitBoundsInflight)
{
    buildDriver(true);
    int accepted = 0;
    while (drv->canTransmit() && accepted < 100) {
        drv->transmit(makePacket(100));
        ++accepted;
    }
    // Ring of 32: the driver refuses before overflowing it.
    EXPECT_LT(accepted, 32);
    EXPECT_GT(accepted, 16);
    drv->flush();
    ctx.events().run();
    EXPECT_TRUE(drv->canTransmit());
}

TEST_F(DriverFixture, TxSpaceSignaledAfterDrain)
{
    buildDriver(true);
    bool space_signaled = false;
    drv->setTxSpaceHandler([&] { space_signaled = true; });
    while (drv->canTransmit())
        drv->transmit(makePacket(100));
    drv->flush();
    ctx.events().run();
    EXPECT_TRUE(space_signaled);
}

TEST_F(DriverFixture, UnprotectedPathUsesNoHypercalls)
{
    // With protection disabled the System also disables the NIC's
    // sequence checking; the unit fixture's NIC has checking on, so
    // only verify the hypervisor-involvement property here (the
    // functional direct path is covered by the attack tests).
    buildDriver(false);
    EXPECT_FALSE(prot->enabled());
    EXPECT_EQ(hv.hypercallCount(), 0u); // RX posting used direct writes
    EXPECT_EQ(prot->pagesPinned(), 0u); // and pinned nothing
}

TEST_F(DriverFixture, ProtectionPinsFollowTraffic)
{
    buildDriver(true);
    drv->transmit(makePacket(1000));
    drv->flush();
    ctx.events().run();
    // TX page pinned then (after another enqueue's lazy unpin or sync)
    // released; RX buffers remain pinned while posted.
    EXPECT_GT(prot->pagesPinned(), prot->pagesUnpinned());
    // 32 RX buffers remain pinned (posted to the NIC).
    EXPECT_GE(prot->pagesPinned() - prot->pagesUnpinned(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Both, DriverFixture, ::testing::Bool());

TEST_P(DriverFixture, DoorbellsBatchWork)
{
    buildDriver(true);
    for (int i = 0; i < 10; ++i)
        drv->transmit(makePacket(500));
    drv->flush();
    ctx.events().run();
    // One flush => one TX doorbell (plus the RX-post doorbell(s) from
    // attach).
    EXPECT_LE(drv->doorbells(), 4u);
    EXPECT_EQ(peer.payloadReceived(), 5000u);
}
