/**
 * @file
 * Multi-host topology tests: the 1-host degenerate case is
 * bit-identical to a standalone System, cross-host TCP traverses
 * guest -> NIC -> switch -> NIC -> guest, multi-host runs are
 * deterministic, and a noisy neighbor on a shared uplink measurably
 * degrades a victim host.
 */

#include <gtest/gtest.h>

#include "core/report.hh"
#include "core/system.hh"
#include "net/eth_switch.hh"
#include "sim/topology.hh"

using namespace cdna;

TEST(Topology, SingleHostMatchesStandalone)
{
    // Host 0 of a topology with no external fabrics builds the exact
    // standalone object graph (same names, same MAC block, same event
    // order): the paper's single-host configurations are the 1-host
    // special case, not a separate code path.
    auto cfg = core::SystemConfig::xenIntel(2).withSeed(7);
    core::System alone(cfg);
    auto r1 = alone.run(sim::milliseconds(20), sim::milliseconds(60));

    sim::Topology topo(cfg.seed);
    auto &h = topo.addHost(cfg, {});
    topo.run(sim::milliseconds(20), sim::milliseconds(60));
    auto r2 = topo.report(h);

    EXPECT_EQ(core::reportToJson(r1), core::reportToJson(r2));
}

TEST(Topology, CrossHostTcpGuestToGuest)
{
    // A guest on host A opens a closed-loop TCP flow to a guest on
    // host B; every segment and every ACK crosses both hosts' full
    // I/O paths and the switch in between.
    sim::Topology topo;
    auto &sw = topo.addSwitch("sw", 4);
    auto &a = topo.addHost(
        core::SystemConfig::cdna(1).withNics(1).transport(core::kTcp),
        {&sw});
    auto &b = topo.addHost(core::SystemConfig::cdna(1)
                               .receive()
                               .withNics(1)
                               .transport(core::kTcp),
                           {&sw});
    a.stack(0, 0).setDefaultDst(b.guestMac(0, 0));

    topo.run(sim::milliseconds(10), sim::milliseconds(40));
    auto ra = topo.report(a);
    auto rb = topo.report(b);

    // The receiving host's guest actually got a useful fraction of
    // line rate.  Goodput of a cross-host flow is measured where the
    // data is consumed (host B); the sender's side reports the wire
    // throughput its NIC injected.
    EXPECT_GT(rb.mbps, 100.0);
    EXPECT_GT(ra.wireMbps, 100.0);
    EXPECT_EQ(rb.switchDrops, sw.totalDrops());
}

TEST(Topology, ThreeHostRunsAreDeterministic)
{
    auto build_and_run = [] {
        sim::Topology topo(3);
        auto &sw = topo.addSwitch("sw", 8);
        std::vector<core::System *> hosts;
        hosts.push_back(&topo.addHost(
            core::SystemConfig::cdna(1).withNics(1).transport(core::kTcp),
            {&sw}));
        hosts.push_back(&topo.addHost(core::SystemConfig::cdna(1)
                                          .receive()
                                          .withNics(1)
                                          .transport(core::kTcp),
                                      {&sw}));
        hosts.push_back(&topo.addHost(core::SystemConfig::xenIntel(1)
                                          .receive()
                                          .withNics(1)
                                          .transport(core::kTcp),
                                      {&sw}));
        hosts[0]->stack(0, 0).setDefaultDst(hosts[1]->guestMac(0, 0));
        auto &peer = topo.addPeer("ext", sw);
        topo.ctx().events().schedule(sim::milliseconds(1), [&] {
            peer.applyWorkload(
                net::workload::WorkloadSpec{}
                    .overTcp({})
                    .toward({hosts[2]->guestMac(0, 0)})
                    .withClass(net::workload::FlowClass::saturating()));
        });
        topo.run(sim::milliseconds(10), sim::milliseconds(30));
        std::string all;
        for (std::size_t i = 0; i < topo.numHosts(); ++i)
            all += core::reportToJson(topo.report(i));
        return all;
    };
    std::string first = build_and_run();
    std::string second = build_and_run();
    EXPECT_EQ(first, second);
    // Three distinct hosts' flows all made progress.
    EXPECT_NE(first.find("\"label\""), std::string::npos);
}

TEST(Topology, NoisyNeighborOnSharedUplinkDegradesVictim)
{
    // Senders sit on a core switch; the victim and noisy hosts share
    // one access switch fed by a single trunk.  When the noisy
    // sender saturates the trunk with open-loop line-rate traffic,
    // the victim's closed-loop TCP flow loses its share and must
    // retransmit around trunk-queue drops.
    auto victim_mbps = [](bool noisy, std::uint64_t *drops) {
        sim::Topology topo(11);
        auto &core_sw = topo.addSwitch("core", 4);
        auto &access = topo.addSwitch("access", 4);
        auto &trunk = topo.link(core_sw, access);

        auto &victim = topo.addHost(core::SystemConfig::cdna(1)
                                        .receive()
                                        .withNics(1)
                                        .transport(core::kTcp),
                                    {&access});
        auto &other = topo.addHost(core::SystemConfig::cdna(1)
                                       .receive()
                                       .withNics(1),
                                   {&access});
        auto &vsrc = topo.addPeer("vsrc", core_sw);
        auto &nsrc = topo.addPeer("nsrc", core_sw);

        // MACs living behind the trunk must be pinned through it on
        // the sender-side switch.
        core_sw.setRoute(victim.guestMac(0, 0), trunk.portOnA());
        core_sw.setRoute(other.guestMac(0, 0), trunk.portOnA());
        access.setRoute(vsrc.mac(), trunk.portOnB());
        access.setRoute(nsrc.mac(), trunk.portOnB());

        topo.ctx().events().schedule(sim::milliseconds(1), [&] {
            vsrc.applyWorkload(
                net::workload::WorkloadSpec{}
                    .overTcp({})
                    .toward({victim.guestMac(0, 0)})
                    .withClass(net::workload::FlowClass::saturating()));
            if (noisy)
                nsrc.applyWorkload(
                    net::workload::WorkloadSpec{}
                        .toward({other.guestMac(0, 0)})
                        .withClass(net::workload::FlowClass::saturating()));
        });
        topo.run(sim::milliseconds(10), sim::milliseconds(40));
        if (drops)
            *drops = core_sw.totalDrops();
        return topo.report(victim).mbps;
    };

    std::uint64_t drops_alone = 0, drops_noisy = 0;
    double alone = victim_mbps(false, &drops_alone);
    double contended = victim_mbps(true, &drops_noisy);
    EXPECT_GT(alone, 400.0);
    EXPECT_LT(contended, 0.75 * alone);
    EXPECT_EQ(drops_alone, 0u);
    EXPECT_GT(drops_noisy, 0u);
}
