/**
 * @file
 * Runtime context revocation (paper section 3.1: "the hypervisor can
 * also revoke a context at any time by notifying the NIC, which will
 * shut down all pending operations associated with the indicated
 * context").
 */

#include <gtest/gtest.h>

#include "core/system.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

struct RevocationFixture : ::testing::Test
{
    SystemConfig
    config()
    {
        SystemConfig cfg = SystemConfig::cdna(2);
        cfg.numNics = 1;
        return cfg;
    }
};

} // namespace

TEST_F(RevocationFixture, MidTrafficRevocationIsClean)
{
    System sys(config());
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(30));

    CdnaNic &nic = *sys.cdnaNic(0);
    auto *drv0 = sys.cdnaDriver(0, 0);
    auto cxt0 = drv0->context();
    std::uint64_t peer_before = sys.peer(0).payloadReceived();

    ASSERT_TRUE(sys.revokeGuestContext(0, 0));
    EXPECT_TRUE(drv0->detached());
    EXPECT_FALSE(nic.contextAllocated(cxt0));

    // The system keeps running without panics; the surviving guest
    // keeps transmitting.
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(50));
    std::uint64_t peer_after = sys.peer(0).payloadReceived();
    EXPECT_GT(peer_after, peer_before);
    EXPECT_EQ(sys.mem().violationCount(), 0u);
}

TEST_F(RevocationFixture, RevocationDropsAllDmaPins)
{
    System sys(config());
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(30));

    std::uint64_t pinned = sys.protection()->pagesPinned();
    std::uint64_t unpinned = sys.protection()->pagesUnpinned();
    EXPECT_GT(pinned, unpinned); // live pins exist (posted RX buffers)

    ASSERT_TRUE(sys.revokeGuestContext(0, 0));
    ASSERT_TRUE(sys.revokeGuestContext(1, 0));
    // Let in-flight hypercalls and DMA drain.
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(20));

    // Every pin was dropped at detach (plus whatever the other guest's
    // teardown released); the guests' pages are reclaimable again.
    EXPECT_EQ(sys.protection()->pagesPinned(),
              sys.protection()->pagesUnpinned());
}

TEST_F(RevocationFixture, RevokedSlotIsReusable)
{
    System sys(config());
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(10));

    CdnaNic &nic = *sys.cdnaNic(0);
    auto cxt0 = sys.cdnaDriver(0, 0)->context();
    std::uint32_t before = nic.allocatedContexts();
    ASSERT_TRUE(sys.revokeGuestContext(0, 0));
    EXPECT_EQ(nic.allocatedContexts(), before - 1);

    auto fresh = nic.allocContext(sys.guestDomain(1)->id(),
                                  net::MacAddr::fromId(555));
    ASSERT_TRUE(fresh.has_value());
    EXPECT_EQ(*fresh, cxt0);
}

TEST_F(RevocationFixture, DoubleRevokeIsRejected)
{
    System sys(config());
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));
    EXPECT_TRUE(sys.revokeGuestContext(0, 0));
    EXPECT_FALSE(sys.revokeGuestContext(0, 0));
    EXPECT_FALSE(sys.revokeGuestContext(9, 0));
    EXPECT_FALSE(sys.revokeGuestContext(0, 7));
}

TEST_F(RevocationFixture, FramesToRevokedMacAreDropped)
{
    System sys(config());
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(10));

    CdnaNic &nic = *sys.cdnaNic(0);
    ASSERT_TRUE(sys.revokeGuestContext(0, 0));

    std::uint64_t drops_before = nic.rxDropFilter();
    net::Packet p;
    p.dst = net::MacAddr::fromId(0x010000u); // guest 0, nic 0's MAC
    p.payloadBytes = 500;
    nic.receiveFrame(p); // as if it had just arrived from the wire
    EXPECT_EQ(nic.rxDropFilter(), drops_before + 1);
}

TEST_F(RevocationFixture, RevokeUnderActiveDmaReclaimsAllPins)
{
    // Revoke one guest very early, while its first transfers (and the
    // enqueue hypercalls pinning their pages) are still in flight.
    System sys(config());
    sys.start();
    sys.ctx().events().runUntil(sim::microseconds(2500.0));
    ASSERT_GT(sys.protection()->pagesPinned(),
              sys.protection()->pagesUnpinned());

    ASSERT_TRUE(sys.revokeGuestContext(0, 0));
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(30));
    ASSERT_TRUE(sys.revokeGuestContext(1, 0));
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(20));

    EXPECT_EQ(sys.protection()->pagesPinned(),
              sys.protection()->pagesUnpinned());
    EXPECT_EQ(sys.mem().violationCount(), 0u);
}

TEST_F(RevocationFixture, SurvivorThroughputUnaffectedByMidRunKill)
{
    sim::Time warmup = sim::milliseconds(100);
    sim::Time measure = sim::milliseconds(300);

    System base(config());
    Report rb = base.run(warmup, measure);
    ASSERT_EQ(rb.perGuestMbps.size(), 2u);

    SystemConfig cfg = config();
    cfg.withFaults(FaultPlan{}.killingGuest(1, /*at_ms=*/150.0));
    System killed(cfg);
    Report rk = killed.run(warmup, measure);

    EXPECT_EQ(rk.guestKills, 1u);
    EXPECT_EQ(rk.dmaViolations, 0u);
    // The survivor keeps (at least) its two-guest share of the wire.
    EXPECT_GE(rk.perGuestMbps[0], 0.9 * rb.perGuestMbps[0]);
    // The killed guest's pins were reclaimed: once the survivor is
    // revoked too, every pin ever taken has been dropped.
    ASSERT_TRUE(killed.revokeGuestContext(0, 0));
    killed.ctx().events().runUntil(killed.ctx().now() +
                                   sim::milliseconds(20));
    EXPECT_EQ(killed.protection()->pagesPinned(),
              killed.protection()->pagesUnpinned());
}

TEST_F(RevocationFixture, XenModeHasNoContextsToRevoke)
{
    SystemConfig cfg = SystemConfig::xenIntel(1);
    System sys(cfg);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(5));
    EXPECT_FALSE(sys.revokeGuestContext(0, 0));
}
