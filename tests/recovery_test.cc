/**
 * @file
 * Failure-domain recovery: driver-domain crash/restart with frontend
 * reconnection, NIC firmware reboot with context reconciliation, and
 * the per-guest availability accounting built on top of them.
 *
 * The paper's reliability argument (section 3.5) is that CDNA removes
 * the driver domain from the data path: a dom0 crash that stalls every
 * Xen guest until netback restarts and the frontends reconnect leaves
 * CDNA guests entirely unaffected, and a NIC firmware reboot is
 * survived by reconciling per-context state against the
 * hypervisor-validated view.  These tests pin both halves of that
 * argument, plus the safety machinery underneath: grant revocation
 * with in-flight-DMA quarantine, use-after-revoke rejection, and
 * transport-timer teardown on guest kills.
 */

#include <gtest/gtest.h>

#include <functional>

#include "core/availability.hh"
#include "core/cli.hh"
#include "core/system.hh"
#include "mem/grant_table.hh"
#include "sim/sweep_presets.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

constexpr double kKillMs = 150.0;

SystemConfig
xenCrash(TransportKind t = kOpenLoop)
{
    return SystemConfig::xenIntel(2).transport(t).withFaults(
        FaultPlan{}.killingDriverDomain(kKillMs));
}

Report
runReport(SystemConfig cfg)
{
    System sys(std::move(cfg));
    return sys.run(sim::milliseconds(100), sim::milliseconds(300));
}

} // namespace

// ------------------------------------------- driver-domain crash ----

TEST(Recovery, XenDomKillStallsEveryGuestThenReconnects)
{
    Report r = runReport(xenCrash());
    EXPECT_EQ(r.driverDomainKills, 1u);
    // Every guest reconnected on every NIC after the restart.
    EXPECT_GE(r.feReconnects, 2u);
    ASSERT_EQ(r.perGuestDowntimeUs.size(), 2u);
    for (double d : r.perGuestDowntimeUs) {
        // The outage spans at least the reboot cost and at most a
        // couple of reconnect backoff rounds on top.
        EXPECT_GT(d, 10000.0);
        EXPECT_LT(d, 40000.0);
    }
    for (double t : r.perGuestTtfpUs)
        EXPECT_GT(t, 0.0);
    EXPECT_GT(r.outagePacketsLost, 0u);
    // Traffic resumed: the run still moves the bulk of a fault-free
    // run's data.
    EXPECT_GT(r.mbps, 500.0);
}

TEST(Recovery, XenDomKillQuarantineBalancedNoViolations)
{
    for (TransportKind t : {kOpenLoop, kTcp}) {
        Report r = runReport(xenCrash(t));
        EXPECT_GT(r.grantsRevoked, 0u);
        EXPECT_GT(r.pagesQuarantined, 0u);
        // Every quarantined page was released by the drain -- nothing
        // leaked, nothing released twice.
        EXPECT_EQ(r.pagesQuarantined, r.quarantineReleased);
        EXPECT_EQ(r.dmaViolations, 0u);
    }
}

TEST(Recovery, CdnaGuestsUnaffectedByDriverDomainKill)
{
    SystemConfig base = SystemConfig::cdna(2).transport(kTcp);
    Report rb = runReport(base);

    SystemConfig cfg = SystemConfig::cdna(2).transport(kTcp).withFaults(
        FaultPlan{}.killingDriverDomain(kKillMs));
    Report rk = runReport(cfg);

    EXPECT_EQ(rk.driverDomainKills, 1u);
    ASSERT_EQ(rk.perGuestDowntimeUs.size(), 2u);
    // The paper's claim, verbatim: guest datapaths never touch dom0,
    // so the kill causes zero downtime and costs no throughput.
    for (double d : rk.perGuestDowntimeUs)
        EXPECT_EQ(d, 0.0);
    EXPECT_EQ(rk.outagePacketsLost, 0u);
    ASSERT_EQ(rk.perGuestMbps.size(), rb.perGuestMbps.size());
    for (std::size_t g = 0; g < rk.perGuestMbps.size(); ++g)
        EXPECT_GE(rk.perGuestMbps[g], 0.95 * rb.perGuestMbps[g]);
}

// ------------------------------------------- firmware reboot --------

TEST(Recovery, CdnaZeroDowntimeUnderFirmwareReboot)
{
    // Default CDNA topology: two NICs per guest.  Rebooting NIC 0's
    // firmware leaves every guest a surviving path, so no guest's
    // progress gap ever exceeds the availability grace period.
    SystemConfig cfg = SystemConfig::cdna(2).withFaults(
        FaultPlan{}.rebootingFirmware(0, kKillMs));
    System sys(cfg);
    Report r = sys.run(sim::milliseconds(100), sim::milliseconds(300));

    EXPECT_EQ(r.firmwareReboots, 1u);
    ASSERT_EQ(r.perGuestDowntimeUs.size(), 2u);
    for (double d : r.perGuestDowntimeUs)
        EXPECT_EQ(d, 0.0);
    // Context reconciliation restored the hypervisor-validated ring
    // state: no sequence-number faults, no protection faults.
    EXPECT_EQ(r.protectionFaults, 0u);
    EXPECT_EQ(r.dmaViolations, 0u);
    EXPECT_EQ(sys.cdnaNic(0)->seqnoFaults(), 0u);
    // The rebooted NIC is back in service, not just tolerated.
    EXPECT_GT(r.mbps, 500.0);
}

TEST(Recovery, FirmwareRebootResumesTrafficOnRebootedNic)
{
    SystemConfig cfg = SystemConfig::cdna(1).withFaults(
        FaultPlan{}.rebootingFirmware(0, 50.0));
    cfg.numNics = 1;
    System sys(cfg);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(100));
    std::uint64_t mid = sys.peer(0).payloadReceived();
    ASSERT_GT(mid, 0u);
    sys.ctx().events().runUntil(sim::milliseconds(150));
    // The only NIC rebooted at 50 ms; traffic kept flowing afterwards.
    EXPECT_GT(sys.peer(0).payloadReceived(), mid);
    EXPECT_EQ(sys.cdnaNic(0)->seqnoFaults(), 0u);
    EXPECT_EQ(sys.mem().violationCount(), 0u);
}

// ------------------------------------------- post-recovery TCP ------

TEST(Recovery, PostRecoveryTcpGoodputMatchesFaultFree)
{
    // The frontends reconnect ~20 ms after the 150 ms kill, but Reno
    // then rebuilds its congestion window additively, so full rate
    // returns only a few hundred ms later.  Measure a late window that
    // captures the recovered steady state, not the climb back.
    auto windowed = [](SystemConfig cfg) {
        System sys(std::move(cfg));
        sys.start();
        auto &ev = sys.ctx().events();
        ev.runUntil(sim::milliseconds(700));
        std::uint64_t before = 0;
        for (std::uint32_t i = 0; i < sys.nicCount(); ++i)
            before += sys.peer(i).payloadReceived();
        ev.runUntil(sim::milliseconds(900));
        std::uint64_t after = 0;
        for (std::uint32_t i = 0; i < sys.nicCount(); ++i)
            after += sys.peer(i).payloadReceived();
        return after - before;
    };

    std::uint64_t clean =
        windowed(SystemConfig::xenIntel(1).transport(kTcp));
    std::uint64_t recovered =
        windowed(SystemConfig::xenIntel(1).transport(kTcp).withFaults(
            FaultPlan{}.killingDriverDomain(kKillMs)));
    ASSERT_GT(clean, 0u);
    double ratio = static_cast<double>(recovered) /
                   static_cast<double>(clean);
    EXPECT_GE(ratio, 0.95) << "post-recovery goodput " << recovered
                           << " vs fault-free " << clean;
    EXPECT_LE(ratio, 1.05);
}

// ------------------------------------------- guest kill teardown ----

TEST(Recovery, KillGuestCancelsTransportTimers)
{
    SystemConfig cfg = SystemConfig::cdna(2).transport(kTcp).withFaults(
        FaultPlan{}.killingGuest(1, 50.0));
    cfg.numNics = 1;
    System sys(cfg);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(49));
    ASSERT_GT(sys.stack(1, 0).tcp()->armedTimers(), 0u);

    sys.ctx().events().runUntil(sim::milliseconds(100));
    // The dead guest's RTO/delayed-ACK timers were all cancelled: no
    // scheduled event can fire into the dead domain.
    EXPECT_EQ(sys.stack(1, 0).tcp()->armedTimers(), 0u);

    // The survivor keeps running.
    std::uint64_t mid = sys.peer(0).payloadReceived();
    sys.ctx().events().runUntil(sim::milliseconds(150));
    EXPECT_GT(sys.peer(0).payloadReceived(), mid);
    EXPECT_EQ(sys.mem().violationCount(), 0u);
}

// ------------------------------------------- grant-table safety -----

namespace {

struct GrantRevokeFixture : ::testing::Test
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 256};
    mem::GrantTable grants{ctx, mem};
    static constexpr mem::DomainId kGuest = 1, kBackend = 2;
};

} // namespace

TEST_F(GrantRevokeFixture, UseAfterRevokeIsRejected)
{
    mem::PageNum page = mem.allocOne(kGuest);
    mem::GrantRef ref = grants.grantAccess(kGuest, kBackend, page);
    ASSERT_NE(ref, mem::kInvalidGrant);
    mem::PageNum mapped = 0;
    ASSERT_TRUE(grants.mapGrant(ref, kBackend, &mapped));

    auto rs = grants.revokeMappingsOf(kBackend);
    EXPECT_EQ(rs.revoked, 1u);
    EXPECT_EQ(rs.quarantined, 1u);

    // The restarted backend replays the stale reference: rejected and
    // counted, even though the domain id matches.
    EXPECT_FALSE(grants.mapGrant(ref, kBackend, &mapped));
    EXPECT_EQ(grants.useAfterRevoke(), 1u);
    // The granter can still reclaim its page bookkeeping.
    EXPECT_TRUE(grants.endGrant(ref, kGuest));
}

TEST_F(GrantRevokeFixture, UnmappedGrantsSurviveBackendCrash)
{
    // A grant the dead backend never mapped still belongs to the guest
    // and must stay replayable after the restart (the request lives on
    // in the shared ring).
    mem::PageNum page = mem.allocOne(kGuest);
    mem::GrantRef ref = grants.grantAccess(kGuest, kBackend, page);
    auto rs = grants.revokeMappingsOf(kBackend);
    EXPECT_EQ(rs.revoked, 0u);
    mem::PageNum mapped = 0;
    EXPECT_TRUE(grants.mapGrant(ref, kBackend, &mapped));
    EXPECT_EQ(mapped, page);
}

TEST_F(GrantRevokeFixture, QuarantinedPageUnreusableUntilDrain)
{
    mem::PageNum page = mem.allocOne(kGuest);
    mem::GrantRef ref = grants.grantAccess(kGuest, kBackend, page);
    mem::PageNum mapped = 0;
    ASSERT_TRUE(grants.mapGrant(ref, kBackend, &mapped));
    grants.revokeMappingsOf(kBackend);
    EXPECT_EQ(grants.quarantinedPages(), 1u);

    // The pin survives revocation: freeing the page defers, and it
    // cannot come back from the allocator while DMA may be in flight.
    std::uint64_t free_before = mem.freePages();
    EXPECT_FALSE(mem.release(page));
    EXPECT_TRUE(mem.releasePending(page));
    EXPECT_EQ(mem.freePages(), free_before);

    EXPECT_EQ(grants.drainQuarantine(), 1u);
    EXPECT_EQ(grants.quarantinedPages(), 0u);
    EXPECT_EQ(mem.freePages(), free_before + 1);
    EXPECT_EQ(grants.quarantineAdmissions(), grants.quarantineReleases());
}

// ------------------------------------------- availability tracker ---

namespace {

struct AvailabilityUnit : ::testing::Test
{
    sim::SimContext ctx;
    AvailabilityTracker avail{ctx, 2};

    void
    at(sim::Time t, std::function<void()> fn)
    {
        ctx.events().schedule(t, std::move(fn));
    }

    void run(sim::Time until) { ctx.events().runUntil(until); }
};

} // namespace

TEST_F(AvailabilityUnit, ProgressWithinGraceScoresZeroDowntime)
{
    // A CDNA guest whose traffic keeps flowing through a dom0 crash:
    // the progress gap stays below the grace window, so the fault
    // never reads as an outage.
    at(sim::milliseconds(10), [&] { avail.noteOutageStart(0); });
    at(sim::milliseconds(10) + AvailabilityTracker::kGrace / 2,
       [&] { avail.noteProgress(0); });
    run(sim::milliseconds(20));
    EXPECT_EQ(avail.downtimeUs(0), 0.0);
    EXPECT_FALSE(avail.anyDowntime());
}

TEST_F(AvailabilityUnit, GapBeyondGraceCountsFullOutage)
{
    at(sim::milliseconds(10), [&] { avail.noteOutageStart(0); });
    at(sim::milliseconds(15), [&] { avail.noteProgress(0); });
    run(sim::milliseconds(20));
    EXPECT_DOUBLE_EQ(avail.downtimeUs(0), 5000.0);
    // Guest 1 never saw the fault.
    EXPECT_EQ(avail.downtimeUs(1), 0.0);
}

TEST_F(AvailabilityUnit, TtfpMeasuredFromRecoveryCompletion)
{
    at(sim::milliseconds(10), [&] { avail.noteOutageStart(0); });
    at(sim::milliseconds(13), [&] { avail.noteRecovery(0); });
    at(sim::milliseconds(15), [&] { avail.noteProgress(0); });
    run(sim::milliseconds(20));
    EXPECT_DOUBLE_EQ(avail.downtimeUs(0), 5000.0);
    EXPECT_DOUBLE_EQ(avail.ttfpUs(0), 2000.0);
}

TEST_F(AvailabilityUnit, OverlappingFaultsMergeIntoOneOutage)
{
    // A firmware reboot during a dom0 outage must not double-count.
    at(sim::milliseconds(10), [&] { avail.noteOutageStart(0); });
    at(sim::milliseconds(12), [&] { avail.noteOutageStart(0); });
    at(sim::milliseconds(16), [&] { avail.noteProgress(0); });
    run(sim::milliseconds(20));
    EXPECT_DOUBLE_EQ(avail.downtimeUs(0), 6000.0);
}

TEST_F(AvailabilityUnit, OpenOutageCountsElapsedSpan)
{
    at(sim::milliseconds(10), [&] { avail.noteOutageStart(0); });
    run(sim::milliseconds(30));
    // No progress yet: the open outage reads as its elapsed span, so a
    // report cut mid-outage does not claim perfect availability.
    EXPECT_DOUBLE_EQ(avail.downtimeUs(0), 20000.0);
    EXPECT_TRUE(avail.anyDowntime());
}

TEST_F(AvailabilityUnit, LostPacketsAccumulatePerGuest)
{
    avail.noteLost(0);
    avail.noteLost(0, 3);
    avail.noteLost(1);
    avail.noteLost(99); // out of range: ignored, not fatal
    EXPECT_EQ(avail.lost(0), 4u);
    EXPECT_EQ(avail.lost(1), 1u);
}

// ------------------------------------------- CLI / fault plan -------

namespace {

std::optional<CliOptions>
parse(std::vector<std::string> args, std::string *error = nullptr)
{
    std::string ignored;
    return parseCli(args, error ? error : &ignored);
}

} // namespace

TEST(RecoveryCli, KillDriverDomainDirective)
{
    auto opt = parse({"--mode", "xen", "--kill-driver-domain", "60"});
    ASSERT_TRUE(opt.has_value());
    const FaultPlan &p = opt->config.faults;
    ASSERT_EQ(p.driverDomainKills.size(), 1u);
    EXPECT_DOUBLE_EQ(p.driverDomainKills[0].atMs, 60.0);
    EXPECT_FALSE(p.empty());

    std::string err;
    EXPECT_FALSE(parse({"--kill-driver-domain", "soon"}, &err));
    EXPECT_NE(err.find("--kill-driver-domain"), std::string::npos);
}

TEST(RecoveryCli, RebootFirmwareDirective)
{
    auto opt = parse({"--reboot-firmware", "1@75"});
    ASSERT_TRUE(opt.has_value());
    const FaultPlan &p = opt->config.faults;
    ASSERT_EQ(p.firmwareReboots.size(), 1u);
    EXPECT_EQ(p.firmwareReboots[0].nic, 1u);
    EXPECT_DOUBLE_EQ(p.firmwareReboots[0].atMs, 75.0);

    std::string err;
    EXPECT_FALSE(parse({"--reboot-firmware", "75"}, &err));
    EXPECT_NE(err.find("--reboot-firmware"), std::string::npos);
}

TEST(RecoveryCli, PlanTextSupportsOutageDirectives)
{
    std::string err;
    auto plan = FaultPlan::parse(
        "kill-driver-domain 60\nreboot-firmware 0@80\n", &err);
    ASSERT_TRUE(plan.has_value()) << err;
    ASSERT_EQ(plan->driverDomainKills.size(), 1u);
    EXPECT_DOUBLE_EQ(plan->driverDomainKills[0].atMs, 60.0);
    ASSERT_EQ(plan->firmwareReboots.size(), 1u);
    EXPECT_EQ(plan->firmwareReboots[0].nic, 0u);
    EXPECT_DOUBLE_EQ(plan->firmwareReboots[0].atMs, 80.0);
}

// ------------------------------------------- availability sweep -----

TEST(Availability, SweepDeterministicAcrossJobs)
{
    // The full preset with shortened windows (the fault still lands
    // inside the measurement window).
    auto spec = [] {
        return sim::presets::availability()
            .warmup(sim::milliseconds(100))
            .measure(sim::milliseconds(120));
    };
    sim::SweepOptions j1;
    j1.jobs = 1;
    sim::SweepOptions j8;
    j8.jobs = 8;
    auto a = sim::runSweep(spec(), j1);
    auto b = sim::runSweep(spec(), j8);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i)
        EXPECT_EQ(a.runs[i].json, b.runs[i].json) << a.runs[i].point.cell;
}
