/**
 * @file
 * Integration tests: full systems in each I/O architecture, exercising
 * the whole stack (apps, OS, hypervisor, NICs, links, peer) and
 * checking cross-cutting invariants -- throughput ordering, profile
 * accounting closure, determinism, packet conservation, fairness.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/system.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

Report
quickRun(SystemConfig cfg, sim::Time measure = sim::milliseconds(150))
{
    System sys(std::move(cfg));
    return sys.run(sim::milliseconds(40), measure);
}

} // namespace

// --------------------------------------------------------- basic runs ----

TEST(SystemIntegration, NativeTransmitsNearLineRate)
{
    auto r = quickRun(SystemConfig::native(2));
    EXPECT_GT(r.mbps, 1700.0);
    EXPECT_LE(r.mbps, 1900.0);
    EXPECT_EQ(r.protectionFaults, 0u);
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(SystemIntegration, XenIntelTransmitCpuBound)
{
    auto r = quickRun(SystemConfig::xenIntel(1));
    EXPECT_GT(r.mbps, 1300.0);
    EXPECT_LT(r.mbps, 1800.0);
    EXPECT_LT(r.idlePct, 5.0); // saturated, as in the paper
    EXPECT_GT(r.drvOsPct, 20.0); // driver domain does real work
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(SystemIntegration, XenRiceNicWorks)
{
    auto r = quickRun(SystemConfig::xenRice(1));
    EXPECT_GT(r.mbps, 800.0);
    EXPECT_EQ(r.dmaViolations, 0u);
    EXPECT_EQ(r.protectionFaults, 0u);
}

TEST(SystemIntegration, CdnaTransmitSaturatesWithIdleTime)
{
    auto r = quickRun(SystemConfig::cdna(1));
    EXPECT_GT(r.mbps, 1840.0);
    EXPECT_GT(r.idlePct, 40.0); // the paper's headline efficiency win
    EXPECT_LT(r.drvOsPct, 2.0); // driver domain out of the data path
    EXPECT_NEAR(r.drvIntrPerSec, 0.0, 1.0); // zero driver interrupts
    EXPECT_GT(r.guestIntrPerSec, 1000.0);
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(SystemIntegration, CdnaReceiveSaturatesWithIdleTime)
{
    auto r = quickRun(SystemConfig::cdna(1).receive());
    EXPECT_GT(r.mbps, 1840.0);
    EXPECT_GT(r.idlePct, 35.0);
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(SystemIntegration, XenReceiveSlowerThanCdna)
{
    auto xen = quickRun(SystemConfig::xenIntel(1).receive());
    auto cdna = quickRun(SystemConfig::cdna(1).receive());
    EXPECT_GT(cdna.mbps, xen.mbps * 1.3);
}

// ------------------------------------------------------- invariants ----

TEST(SystemIntegration, ProfileSumsToHundredPercent)
{
    for (auto cfg : {SystemConfig::xenIntel(2), SystemConfig::xenRice(2)}) {
        auto r = quickRun(cfg);
        double total = r.hypPct + r.drvOsPct + r.drvUserPct +
                       r.guestOsPct + r.guestUserPct + r.idlePct;
        EXPECT_NEAR(total, 100.0, 1.5) << r.label;
    }
    auto r = quickRun(SystemConfig::cdna(2).receive());
    double total = r.hypPct + r.drvOsPct + r.drvUserPct + r.guestOsPct +
                   r.guestUserPct + r.idlePct;
    EXPECT_NEAR(total, 100.0, 1.5);
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    auto a = quickRun(SystemConfig::cdna(2), sim::milliseconds(80));
    auto b = quickRun(SystemConfig::cdna(2), sim::milliseconds(80));
    EXPECT_DOUBLE_EQ(a.mbps, b.mbps);
    EXPECT_DOUBLE_EQ(a.hypPct, b.hypPct);
    EXPECT_DOUBLE_EQ(a.guestIntrPerSec, b.guestIntrPerSec);
    EXPECT_DOUBLE_EQ(a.domainSwitchPerSec, b.domainSwitchPerSec);
}

TEST(SystemIntegration, PacketConservationOnTransmit)
{
    // Everything the guests' stacks emitted either reached the peer or
    // is still in flight (bounded by ring/buffer capacity).
    SystemConfig cfg = SystemConfig::cdna(2);
    System sys(cfg);
    sys.run(sim::milliseconds(40), sim::milliseconds(120));
    std::uint64_t sent = 0;
    for (std::uint32_t g = 0; g < 2; ++g)
        for (std::uint32_t n = 0; n < 2; ++n)
            sent += sys.stack(g, n).txBytes();
    std::uint64_t received = 0;
    for (std::uint32_t n = 0; n < 2; ++n)
        received += sys.peer(n).payloadReceived();
    EXPECT_LE(received, sent);
    // In-flight bound: 2 rings x 256 descriptors x MSS per interface.
    std::uint64_t bound = 4ull * 256 * net::kMss + 4ull * 512 * 1024;
    EXPECT_LE(sent - received, bound);
}

TEST(SystemIntegration, CdnaFairAcrossGuests)
{
    auto r = quickRun(SystemConfig::cdna(4), sim::milliseconds(300));
    ASSERT_EQ(r.perGuestMbps.size(), 4u);
    EXPECT_GT(r.fairness(), 0.85);
    double sum = 0;
    for (double m : r.perGuestMbps)
        sum += m;
    EXPECT_NEAR(sum, r.mbps, r.mbps * 0.02);
}

TEST(SystemIntegration, ThroughputOrderingMatchesPaper)
{
    // CDNA > Xen in both directions (Tables 2-3).
    auto xen_tx = quickRun(SystemConfig::xenIntel(1));
    auto cdna_tx = quickRun(SystemConfig::cdna(1));
    EXPECT_GT(cdna_tx.mbps, xen_tx.mbps);
    auto xen_rx = quickRun(SystemConfig::xenIntel(1).receive());
    auto cdna_rx = quickRun(SystemConfig::cdna(1).receive());
    EXPECT_GT(cdna_rx.mbps, xen_rx.mbps);
}

TEST(SystemIntegration, XenDeclinesWithGuestsCdnaDoesNot)
{
    auto xen1 = quickRun(SystemConfig::xenIntel(1));
    auto xen8 = quickRun(SystemConfig::xenIntel(8));
    EXPECT_LT(xen8.mbps, xen1.mbps * 0.8);

    auto cdna1 = quickRun(SystemConfig::cdna(1));
    auto cdna8 = quickRun(SystemConfig::cdna(8));
    EXPECT_GT(cdna8.mbps, cdna1.mbps * 0.95);
    EXPECT_LT(cdna8.idlePct, cdna1.idlePct);
}

TEST(SystemIntegration, ProtectionOffSameThroughputLessHypervisor)
{
    // Table 4: disabling DMA protection changes efficiency, not
    // bandwidth.
    auto on = quickRun(SystemConfig::cdna(1));
    auto off = quickRun(SystemConfig::cdna(1).withProtection(false));
    EXPECT_NEAR(on.mbps, off.mbps, on.mbps * 0.01);
    EXPECT_LT(off.hypPct, on.hypPct - 4.0);
    EXPECT_GT(off.idlePct, on.idlePct + 3.0);
}

TEST(SystemIntegration, PerContextIommuCarriesTraffic)
{
    SystemConfig cfg = SystemConfig::cdna(2);
    cfg.iommuMode = mem::Iommu::Mode::kPerContext;
    System sys(cfg);
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(120));
    EXPECT_GT(r.mbps, 1800.0);
    ASSERT_NE(sys.iommu(), nullptr);
    EXPECT_EQ(sys.iommu()->blockedCount(), 0u);
    EXPECT_EQ(r.dmaViolations, 0u);
}

TEST(SystemIntegration, PerDeviceIommuInsufficientForCdna)
{
    // Section 5.3's argument: a per-device IOMMU cannot express
    // "context k belongs to guest k"; with several guests it blocks
    // legitimate traffic.
    SystemConfig cfg = SystemConfig::cdna(2);
    cfg.iommuMode = mem::Iommu::Mode::kPerDevice;
    System sys(cfg);
    // Bind each device to guest 0 only.
    for (std::uint32_t i = 0; i < 2; ++i)
        sys.iommu()->bindDevice(i, sys.guestDomain(0)->id());
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(120));
    EXPECT_GT(sys.iommu()->blockedCount(), 0u);
    (void)r;
}

TEST(SystemIntegration, GuestIntrRateTracksCoalescing)
{
    // Halving the coalescing window roughly doubles the interrupt rate
    // (the paper tuned this knob per experiment).
    SystemConfig slow = SystemConfig::cdna(1);
    slow.costs.cdnaCoalesce.delay = sim::microseconds(290);
    SystemConfig fast = SystemConfig::cdna(1);
    fast.costs.cdnaCoalesce.delay = sim::microseconds(145);
    auto rs = quickRun(std::move(slow));
    auto rf = quickRun(std::move(fast));
    EXPECT_NEAR(rf.guestIntrPerSec / rs.guestIntrPerSec, 2.0, 0.35);
}

TEST(SystemIntegration, NoRxDropsOnTransmitTests)
{
    auto r = quickRun(SystemConfig::cdna(1));
    EXPECT_EQ(r.rxDropsNoDesc, 0u);
}

TEST(SystemIntegration, XenGrantsBalance)
{
    SystemConfig cfg = SystemConfig::xenIntel(1);
    System sys(cfg);
    sys.run(sim::milliseconds(40), sim::milliseconds(100));
    // Grants are created and retired continuously; the number still
    // live is bounded by the ring capacity (not growing with time).
    EXPECT_LT(sys.hv().grants().activeGrants(), 4u * 256u * 16u);
}

TEST(SystemIntegration, ReportFairnessHelper)
{
    Report r;
    r.perGuestMbps = {100.0, 50.0};
    EXPECT_DOUBLE_EQ(r.fairness(), 0.5);
    Report empty;
    EXPECT_DOUBLE_EQ(empty.fairness(), 1.0);
    Report zero;
    zero.perGuestMbps = {0.0, 0.0};
    EXPECT_DOUBLE_EQ(zero.fairness(), 1.0);
}

TEST(SystemIntegration, ReportRowContainsLabelAndRate)
{
    SystemConfig cfg = SystemConfig::cdna(1);
    System sys(cfg);
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(80));
    std::string row = r.row();
    EXPECT_NE(row.find("cdna/tx"), std::string::npos);
    EXPECT_FALSE(Report::header().empty());
}

TEST(SystemIntegration, CopyModeNetbackCarriesTraffic)
{
    // Copy-mode replaces the flip hypercall with a driver-domain memcpy
    // plus grant map/unmap; functionally the guest still receives into
    // its own pages, and no flips occur.
    SystemConfig cfg = SystemConfig::xenIntel(1).receive();
    cfg.xenRxCopyMode = true;
    System sys(cfg);
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(150));
    EXPECT_GT(r.mbps, 800.0);
    EXPECT_EQ(r.dmaViolations, 0u);
    EXPECT_EQ(sys.hv().grants().flipCount(), 0u);
}

TEST(SystemIntegration, FlipModeActuallyFlips)
{
    SystemConfig cfg = SystemConfig::xenIntel(1).receive();
    System sys(cfg);
    sys.run(sim::milliseconds(40), sim::milliseconds(100));
    EXPECT_GT(sys.hv().grants().flipCount(), 1000u);
}
