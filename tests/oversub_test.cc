/**
 * @file
 * Virtual-context oversubscription: paging per-guest CDNA context
 * state in and out of the NIC's fixed physical slots, the hypervisor
 * pager that drives it, the context-exhaustion diagnostic, and the
 * uint32 ring-index wraparound fixes that the paging machinery pinned
 * down.
 *
 * The paper's NIC holds 32 hardware contexts; everything here is about
 * running more guests than that.  Suites are named Oversub* /
 * ContextPage* so CI can select them with -R "Oversub|ContextPage".
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cdna_nic.hh"
#include "core/cli.hh"
#include "core/context_pager.hh"
#include "core/system.hh"
#include "cpu/sim_cpu.hh"
#include "mem/grant_table.hh"
#include "net/eth_link.hh"
#include "net/traffic_peer.hh"
#include "sim/sweep.hh"
#include "sim/sweep_presets.hh"
#include "vmm/hypervisor.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

/** NIC-level harness mirroring the one in cdna_nic_test.cc. */
struct OversubHarness
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 8192};
    mem::PciBus bus{ctx, "pci"};
    net::EthLink link{ctx, "eth"};
    net::TrafficPeer peer{ctx, "peer", link};
    CdnaNic nic;

    std::vector<std::uint32_t> producers;
    std::vector<std::uint64_t> seqnos;
    std::vector<std::uint32_t> rxProducers;
    std::vector<std::uint64_t> rxSeqnos;

    explicit OversubHarness(CdnaNicParams params = {})
        : nic(ctx, "cdna", bus, mem, 0, link,
              params)
    {
    }

    CdnaNic::ContextId
    makeContext(mem::DomainId dom, std::uint32_t mac_id,
                std::uint32_t entries = 16)
    {
        auto cxt = nic.allocContext(dom, net::MacAddr::fromId(mac_id));
        EXPECT_TRUE(cxt.has_value());
        mem::PageNum txp = mem.allocOne(dom);
        mem::PageNum rxp = mem.allocOne(dom);
        nic.configureContextRings(*cxt, entries, mem::addrOf(txp),
                                  entries, mem::addrOf(rxp));
        if (producers.size() <= *cxt) {
            producers.resize(*cxt + 1, 0);
            seqnos.resize(*cxt + 1, 1);
            rxProducers.resize(*cxt + 1, 0);
            rxSeqnos.resize(*cxt + 1, 1);
        }
        return *cxt;
    }

    void
    queueTx(CdnaNic::ContextId cxt, std::uint32_t payload,
            net::MacAddr dst)
    {
        mem::DomainId dom = nic.contextDomain(cxt);
        mem::PageNum page = mem.allocOne(dom);
        nic::DmaDescriptor d;
        d.sg = {{mem::addrOf(page), payload}};
        d.flags = nic::kDescValid | nic::kDescEop;
        d.seqno = seqnos[cxt]++;
        net::Packet p;
        p.src = net::MacAddr::fromId(100 + cxt);
        p.dst = dst;
        p.payloadBytes = payload;
        p.hostSg = d.sg;
        p.srcDomain = dom;
        nic.txRing(cxt).write(producers[cxt], d);
        nic.txRing(cxt).attachPacket(producers[cxt], std::move(p));
        ++producers[cxt];
    }

    void
    doorbellTx(CdnaNic::ContextId cxt)
    {
        nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, producers[cxt]);
    }
};

SystemConfig
oversubbed(std::uint32_t guests)
{
    SystemConfig cfg = SystemConfig::cdna(guests);
    cfg.numNics = 1;
    return cfg.oversubscribed();
}

} // namespace

// ------------------------------------------ exhaustion diagnostic ----

TEST(Oversub, GuestPastContextLimitThrowsClearDiagnostic)
{
    // The 33rd CDNA guest on a 32-context NIC must fail with a
    // diagnostic that names the limit and the remedy -- not an assert.
    SystemConfig cfg = SystemConfig::cdna(nic::kMaxContexts + 1);
    cfg.numNics = 1;
    try {
        System sys(cfg);
        sys.start();
        FAIL() << "expected context exhaustion to throw";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("out of hardware contexts"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("oversubscription"), std::string::npos)
            << what;
    }
}

TEST(Oversub, InertWhenAllGuestsResident)
{
    // With oversubscription enabled but every guest resident, the run
    // must be byte-identical to the plain configuration: the pager
    // never fires and all new state is timing-neutral.
    SystemConfig plain = SystemConfig::cdna(4);
    plain.numNics = 1;
    plain.withLabel("pin");
    SystemConfig over = plain;
    over.oversubscribed();

    System a(plain);
    Report ra = a.run(sim::milliseconds(5), sim::milliseconds(20));
    System b(over);
    Report rb = b.run(sim::milliseconds(5), sim::milliseconds(20));
    EXPECT_EQ(rb.cxtPageTraps, 0u);
    EXPECT_EQ(rb.cxtEvictions, 0u);
    EXPECT_EQ(reportToJson(ra), reportToJson(rb));
}

// --------------------------------------------- graceful degradation ----

TEST(Oversub, GracefulDegradationPastPhysicalContexts)
{
    // 40 hot guests over 32 slots: traffic flows, paging churns, and
    // nothing leaks -- no protection faults, no grant imbalance, no
    // availability downtime charged to evicted-but-healthy guests.
    System sys(oversubbed(40));
    Report r = sys.run(sim::milliseconds(5), sim::milliseconds(20));

    EXPECT_GT(r.mbps, 0.0);
    EXPECT_EQ(r.protectionFaults, 0u);
    EXPECT_EQ(r.dmaViolations, 0u);
    EXPECT_GT(r.cxtPageTraps, 0u);
    EXPECT_GT(r.cxtEvictions, 0u);
    EXPECT_GT(r.cxtPageIns, 0u);
    EXPECT_LE(r.cxtResidentPeak, nic::kMaxContexts);

    // Eviction is not an outage: a paged-out guest pages back in on
    // its next doorbell, well inside the availability grace window.
    ASSERT_EQ(r.perGuestDowntimeUs.size(), 40u);
    for (double d : r.perGuestDowntimeUs)
        EXPECT_EQ(d, 0.0);
}

TEST(Oversub, GrantsStayRevocableWhilePagedOut)
{
    // Grant-table operations are hypervisor state, independent of NIC
    // residency: a guest whose context is paged out can still issue,
    // serve, and retire grants.
    SystemConfig cfg = SystemConfig::cdna(8);
    cfg.numNics = 1;
    cfg.cdnaParams.numContexts = 4;
    cfg.oversubscribed();
    System sys(cfg);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(10));

    CdnaNic &nic = *sys.cdnaNic(0);
    int victim = -1;
    for (std::uint32_t g = 0; g < 8; ++g)
        if (!nic.contextResident(sys.cdnaDriver(g, 0)->context())) {
            victim = static_cast<int>(g);
            break;
        }
    ASSERT_GE(victim, 0) << "no guest paged out with 8 guests on 4 slots";

    mem::DomainId from = sys.guestDomain(victim)->id();
    mem::DomainId to = sys.guestDomain((victim + 1) % 8)->id();
    mem::GrantTable &grants = sys.hypervisor().grants();
    mem::PageNum page = sys.mem().allocOne(from);
    mem::GrantRef ref = grants.grantAccess(from, to, page);
    mem::PageNum mapped = 0;
    EXPECT_TRUE(grants.mapGrant(ref, to, &mapped));
    EXPECT_EQ(mapped, page);
    EXPECT_TRUE(grants.unmapGrant(ref, to));
    EXPECT_TRUE(grants.endGrant(ref, from));
}

TEST(Oversub, CliFlagConfiguresPaging)
{
    std::string err;
    auto opt = parseCli({"--mode", "cdna", "--guests", "64", "--oversub",
                         "--evict-policy", "traffic"},
                        &err);
    ASSERT_TRUE(opt.has_value()) << err;
    EXPECT_TRUE(opt->config.ctxOversub);
    EXPECT_EQ(opt->config.ctxEvictPolicy, EvictPolicy::kTrafficWeighted);
    EXPECT_FALSE(parseCli({"--mode", "xen", "--oversub"}, &err));
    EXPECT_FALSE(
        parseCli({"--mode", "cdna", "--evict-policy", "random"}, &err));
}

// ------------------------------------------------- NIC-level paging ----

TEST(ContextPage, AllocBeyondPhysicalSlotsStartsPagedOut)
{
    CdnaNicParams params;
    params.numContexts = 2;
    params.virtualContexts = 4;
    OversubHarness h(params);
    auto a = h.makeContext(1, 1);
    auto b = h.makeContext(2, 2);
    auto c = h.makeContext(3, 3);
    EXPECT_TRUE(h.nic.contextResident(a));
    EXPECT_TRUE(h.nic.contextResident(b));
    EXPECT_FALSE(h.nic.contextResident(c));
    EXPECT_EQ(h.nic.freeSlots(), 0u);
    EXPECT_EQ(h.nic.allocatedContexts(), 3u);
    EXPECT_EQ(h.nic.residentPeak(), 2u);
}

TEST(ContextPage, DoorbellToPagedOutTrapsAndReplays)
{
    CdnaNicParams params;
    params.numContexts = 1;
    params.virtualContexts = 2;
    OversubHarness h(params);
    auto a = h.makeContext(1, 1);
    auto b = h.makeContext(2, 2);
    ASSERT_FALSE(h.nic.contextResident(b));

    std::vector<CdnaNic::ContextId> traps;
    h.nic.setPageFaultHandler(
        [&](CdnaNic::ContextId id) { traps.push_back(id); });

    // Ring the paged-out context: the work is staged in its saved
    // mailbox image and the access traps.
    h.queueTx(b, 1500, h.peer.mac());
    h.doorbellTx(b);
    h.ctx.events().run();
    ASSERT_EQ(traps.size(), 1u);
    EXPECT_EQ(traps[0], b);
    EXPECT_EQ(h.nic.pageTraps(), 1u);
    EXPECT_EQ(h.peer.payloadReceived(), 0u);

    // Manual switch: evict the idle resident, restore the fault
    bool evicted = false;
    h.nic.pageOutContext(a, [&] { evicted = true; });
    h.ctx.events().run();
    ASSERT_TRUE(evicted);
    EXPECT_FALSE(h.nic.contextResident(a));
    ASSERT_EQ(h.nic.freeSlots(), 1u);

    h.nic.pageInContext(b);
    h.nic.replayDoorbells(b);
    h.ctx.events().run();
    EXPECT_TRUE(h.nic.contextResident(b));
    // The doorbell rung while paged out was replayed from the mailbox
    // image -- the staged frame goes out with no second ring.
    EXPECT_EQ(h.peer.payloadReceived(), 1500u);
    EXPECT_EQ(h.nic.pageIns(), 1u);
    EXPECT_EQ(h.nic.seqnoFaults(), 0u);
}

// ------------------------------------------------ hypervisor pager ----

namespace {

/** Harness with a real hypervisor and pager wired to the NIC. */
struct PagerHarness : OversubHarness
{
    cpu::SimCpu cpu{ctx, "cpu"};
    vmm::Hypervisor hv{ctx, cpu, mem};
    CostModel costs{};
    ContextPager pager;

    explicit PagerHarness(CdnaNicParams params,
                          EvictPolicy policy = EvictPolicy::kLru)
        : OversubHarness(params),
          pager(ctx, "pager", hv, nic, costs, policy)
    {
        nic.setPageFaultHandler(
            [this](CdnaNic::ContextId id) { pager.onTrap(id); });
    }
};

} // namespace

TEST(ContextPage, PagerRestoresFaultingContextEndToEnd)
{
    CdnaNicParams params;
    params.numContexts = 2;
    params.virtualContexts = 3;
    PagerHarness h(params);
    auto a = h.makeContext(1, 1);
    auto b = h.makeContext(2, 2);
    auto c = h.makeContext(3, 3);

    // Warm both residents so eviction has real traffic state to weigh.
    h.queueTx(a, 1000, h.peer.mac());
    h.doorbellTx(a);
    h.queueTx(b, 1000, h.peer.mac());
    h.doorbellTx(b);
    h.ctx.events().run();
    EXPECT_EQ(h.peer.payloadReceived(), 2000u);

    // Fault the third context in: trap -> evict -> save -> restore ->
    // doorbell replay, all through the pager's cost-modelled path.
    h.queueTx(c, 2000, h.peer.mac());
    h.doorbellTx(c);
    h.ctx.events().run();

    EXPECT_TRUE(h.nic.contextResident(c));
    EXPECT_EQ(h.peer.payloadReceived(), 4000u);
    EXPECT_GE(h.nic.pageTraps(), 1u);
    EXPECT_EQ(h.nic.pageEvictions(), 1u);
    EXPECT_EQ(h.nic.pageIns(), 1u);
    EXPECT_GE(h.hv.contextTrapCount(), 1u);
    // Exactly one of the two original residents was displaced.
    EXPECT_NE(h.nic.contextResident(a), h.nic.contextResident(b));
}

TEST(ContextPage, LruAndTrafficPoliciesPickDifferentVictims)
{
    CdnaNicParams params;
    params.numContexts = 2;
    params.virtualContexts = 3;
    OversubHarness h(params);
    cpu::SimCpu cpu{h.ctx, "cpu"};
    vmm::Hypervisor hv{h.ctx, cpu, h.mem};
    CostModel costs{};
    ContextPager lru(h.ctx, "lru", hv, h.nic, costs, EvictPolicy::kLru);
    ContextPager traffic(h.ctx, "traffic", hv, h.nic, costs,
                         EvictPolicy::kTrafficWeighted);

    auto a = h.makeContext(1, 1);
    auto b = h.makeContext(2, 2);
    h.makeContext(3, 3); // paged out; makes both residents candidates

    // Context a: heavy traffic, but long ago.  Context b: idle, but
    // touched recently.  LRU evicts the stale-but-busy a; the
    // traffic-weighted policy protects it and evicts the idle b.
    for (int i = 0; i < 4; ++i)
        h.queueTx(a, 1000, h.peer.mac());
    h.doorbellTx(a);
    h.ctx.events().run();
    h.ctx.events().runUntil(h.ctx.now() + sim::milliseconds(1));
    h.nic.pioWriteMailbox(b, nic::kMboxRxProducer, 0);

    ASSERT_LT(h.nic.contextLastActive(a), h.nic.contextLastActive(b));
    ASSERT_GT(h.nic.contextTrafficScore(a),
              h.nic.contextTrafficScore(b));
    EXPECT_EQ(lru.pickVictim(), std::optional<CdnaNic::ContextId>(a));
    EXPECT_EQ(traffic.pickVictim(),
              std::optional<CdnaNic::ContextId>(b));
}

// --------------------------------------------- uint32 wraparound ----

TEST(ContextPageWrap, RingIndicesSurviveWraparoundAndReboot)
{
    // Free-running ring indices are uint32 by design; completion
    // counts (and therefore seqnos) are 64-bit.  Start a context six
    // descriptors shy of UINT32_MAX, push traffic across the wrap,
    // then reboot the firmware: the post-reboot seqno realignment must
    // come from the 64-bit completion stream, not the wrapped 32-bit
    // consumer index (the pre-fix code truncated and faulted here).
    OversubHarness h;
    auto cxt = h.makeContext(1, 1, 16);
    const std::uint32_t base = 0xFFFFFFFAu;
    const std::uint64_t done64 = (1ull << 32) | base;
    h.nic.seedContextCounters(cxt, base, done64, base, done64);
    h.producers[cxt] = base;
    h.seqnos[cxt] = done64 + 1;
    h.rxProducers[cxt] = base;
    h.rxSeqnos[cxt] = done64 + 1;

    for (int i = 0; i < 12; ++i)
        h.queueTx(cxt, 1000, h.peer.mac());
    h.doorbellTx(cxt);
    h.ctx.events().run();
    EXPECT_EQ(h.peer.payloadReceived(), 12000u);
    EXPECT_EQ(h.nic.seqnoFaults(), 0u);

    h.nic.rebootFirmware(sim::microseconds(50), sim::microseconds(1));
    h.ctx.events().run();
    for (int i = 0; i < 4; ++i)
        h.queueTx(cxt, 1000, h.peer.mac());
    h.doorbellTx(cxt);
    h.ctx.events().run();
    EXPECT_EQ(h.peer.payloadReceived(), 16000u);
    EXPECT_EQ(h.nic.seqnoFaults(), 0u);
    EXPECT_FALSE(h.nic.contextFaulted(cxt));
}

// -------------------------------------------------- sweep contract ----

namespace {

sim::ExperimentSpec
miniOversubSpec()
{
    return sim::ExperimentSpec("mini-oversub")
        .config("cdna-ov",
                [](std::uint32_t g) { return oversubbed(g); })
        .guests({8, 40})
        .seeds(1)
        .warmup(sim::milliseconds(2))
        .measure(sim::milliseconds(8));
}

} // namespace

TEST(OversubSweep, DeterministicAcrossJobCounts)
{
    sim::SweepOptions j1;
    j1.jobs = 1;
    sim::SweepOptions j8;
    j8.jobs = 8;
    auto a = sim::runSweep(miniOversubSpec(), j1);
    auto b = sim::runSweep(miniOversubSpec(), j8);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i)
        EXPECT_EQ(a.runs[i].json, b.runs[i].json)
            << a.runs[i].point.cell;
    EXPECT_EQ(sim::sweepToJson(a), sim::sweepToJson(b));
}

TEST(OversubSweep, SingleSeedReportsZeroSpreadNotNan)
{
    sim::SweepOptions opt;
    opt.jobs = 2;
    auto result = sim::runSweep(miniOversubSpec(), opt);
    ASSERT_FALSE(result.cells.empty());
    for (const auto &cell : result.cells) {
        EXPECT_EQ(cell.runs, 1u);
        for (const auto &[name, stats] : cell.metrics) {
            EXPECT_EQ(stats.stddev, 0.0) << cell.cell << "/" << name;
            EXPECT_EQ(stats.ci95, 0.0) << cell.cell << "/" << name;
            EXPECT_FALSE(std::isnan(stats.mean))
                << cell.cell << "/" << name;
        }
    }
}

TEST(OversubSweep, PresetRegisteredAndWellFormed)
{
    auto spec = sim::presets::byName("oversub");
    ASSERT_TRUE(spec.has_value());
    auto points = spec->expand();
    ASSERT_FALSE(points.empty());
    // 3 configs x 6 guest counts; plain cdna silently gains paging
    // above 32 guests, cdna-oversub always pages, xen never does.
    bool sawOversubLabel = false;
    for (const auto &p : points)
        if (p.cell.find("cdna-oversub") != std::string::npos)
            sawOversubLabel = true;
    EXPECT_TRUE(sawOversubLabel);
}
