/**
 * @file
 * Coverage for remaining small surfaces: logging levels, stat dumps,
 * IOMMU drop accounting at the NIC, and report edge cases.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "sim/logger.hh"

using namespace cdna;
using namespace cdna::core;

TEST(Logger, GlobalAndPerChannelThresholds)
{
    sim::Logger quiet("quiet");
    sim::Logger chatty("chatty");
    sim::Logger::setGlobalLevel(sim::LogLevel::kWarn);
    EXPECT_TRUE(quiet.enabled(sim::LogLevel::kError));
    EXPECT_TRUE(quiet.enabled(sim::LogLevel::kWarn));
    EXPECT_FALSE(quiet.enabled(sim::LogLevel::kDebug));

    chatty.setLevel(sim::LogLevel::kTrace);
    EXPECT_TRUE(chatty.enabled(sim::LogLevel::kTrace));
    EXPECT_FALSE(quiet.enabled(sim::LogLevel::kTrace));

    sim::Logger::setGlobalLevel(sim::LogLevel::kError);
    EXPECT_FALSE(quiet.enabled(sim::LogLevel::kWarn));
    EXPECT_TRUE(chatty.enabled(sim::LogLevel::kTrace)); // override wins
    sim::Logger::setGlobalLevel(sim::LogLevel::kWarn);
}

TEST(Misc, EventQueueRunCapsEventCount)
{
    sim::EventQueue eq;
    int fired = 0;
    std::function<void()> self = [&] {
        ++fired;
        eq.schedule(1, self);
    };
    eq.schedule(1, self);
    EXPECT_EQ(eq.run(25), 25u);
    EXPECT_EQ(fired, 25);
}

TEST(Misc, HistogramMergeFromEmpty)
{
    sim::Histogram a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    b.record(5);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
}

TEST(Misc, NicIommuDropAccounting)
{
    // A per-device IOMMU mis-bound for CDNA drops traffic at the NIC,
    // and the NIC accounts for every suppressed packet.
    SystemConfig cfg = SystemConfig::cdna(2);
    cfg.numNics = 1;
    cfg.iommuMode = mem::Iommu::Mode::kPerDevice;
    System sys(cfg);
    sys.iommu()->bindDevice(0, sys.guestDomain(0)->id());
    sys.run(sim::milliseconds(20), sim::milliseconds(60));
    // Guest 1's DMA is blocked; its packets are dropped, not sent.
    EXPECT_GT(sys.cdnaNic(0)->iommuDrops(), 0u);
    EXPECT_EQ(sys.mem().violationCount(), 0u);
}

TEST(Misc, SystemStatsDumpEnumeratesComponents)
{
    SystemConfig cfg = SystemConfig::cdna(1);
    System sys(cfg);
    sys.run(sim::milliseconds(10), sim::milliseconds(20));
    std::string dump = sys.ctx().dumpStats();
    EXPECT_NE(dump.find("cdna0.tx_packets"), std::string::npos);
    EXPECT_NE(dump.find("hypervisor.hypercalls"), std::string::npos);
    EXPECT_NE(dump.find("phys-mem.dma_accesses"), std::string::npos);
}

TEST(Misc, ReportWindowAndLabelPropagate)
{
    SystemConfig cfg = SystemConfig::cdna(1);
    cfg.label = "custom-label";
    System sys(cfg);
    auto r = sys.run(sim::milliseconds(10), sim::milliseconds(30));
    EXPECT_EQ(r.label, "custom-label");
    EXPECT_EQ(r.window, sim::milliseconds(30));
}

TEST(Misc, PerGuestThroughputSumsToAggregate)
{
    SystemConfig cfg = SystemConfig::cdna(3);
    System sys(cfg);
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(120));
    double sum = 0;
    for (double g : r.perGuestMbps)
        sum += g;
    EXPECT_NEAR(sum, r.mbps, r.mbps * 0.02);
}

TEST(Misc, NativeModeHasNoHypervisorActivity)
{
    SystemConfig cfg = SystemConfig::native(2);
    System sys(cfg);
    auto r = sys.run(sim::milliseconds(40), sim::milliseconds(100));
    EXPECT_LT(r.hypPct, 1.0);
    EXPECT_DOUBLE_EQ(r.hypercallPerSec, 0.0);
    EXPECT_GT(r.mbps, 1500.0);
}
