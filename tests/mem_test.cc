/**
 * @file
 * Unit tests for the memory substrate: page ownership, reference
 * counting and deferred reallocation (the paper's section 3.3
 * invariants), grant table, PCI bus timing, DMA engine, IOMMU.
 */

#include <gtest/gtest.h>

#include "mem/dma_engine.hh"
#include "mem/grant_table.hh"
#include "mem/iommu.hh"
#include "mem/pci_bus.hh"
#include "mem/phys_memory.hh"
#include "sim/sim_object.hh"

using namespace cdna;
using namespace cdna::mem;

namespace {

struct MemFixture : ::testing::Test
{
    sim::SimContext ctx;
    PhysMemory mem{ctx, 1024};
};

} // namespace

// ---------------------------------------------------------- ownership ----

TEST_F(MemFixture, AllocAssignsOwnership)
{
    auto pages = mem.alloc(7, 4);
    ASSERT_EQ(pages.size(), 4u);
    for (auto p : pages) {
        EXPECT_TRUE(mem.ownedBy(p, 7));
        EXPECT_FALSE(mem.ownedBy(p, 8));
    }
    EXPECT_EQ(mem.freePages(), 1020u);
}

TEST_F(MemFixture, AllocFailsWhenInsufficient)
{
    EXPECT_TRUE(mem.alloc(1, 2000).empty());
    EXPECT_EQ(mem.freePages(), 1024u); // nothing partially allocated
}

TEST_F(MemFixture, ReleaseReturnsToFreePool)
{
    PageNum p = mem.allocOne(3);
    EXPECT_TRUE(mem.release(p));
    EXPECT_EQ(mem.ownerOf(p), kDomFree);
    EXPECT_EQ(mem.freePages(), 1024u);
}

TEST_F(MemFixture, PinnedReleaseIsDeferred)
{
    // The core protection invariant: a page freed by its owner while a
    // DMA is outstanding must not be reallocatable until the pin drops.
    PageNum p = mem.allocOne(3);
    mem.getRef(p);
    EXPECT_FALSE(mem.release(p));
    EXPECT_TRUE(mem.releasePending(p));
    EXPECT_EQ(mem.ownerOf(p), 3u); // still owned while DMA outstanding

    // The page must not be in the free pool yet.
    auto other = mem.alloc(9, 1023);
    EXPECT_EQ(other.size(), 1023u);
    EXPECT_TRUE(mem.alloc(9, 1).empty());

    mem.putRef(p);
    EXPECT_EQ(mem.ownerOf(p), kDomFree);
    EXPECT_EQ(mem.alloc(9, 1).size(), 1u);
}

TEST_F(MemFixture, MultiplePinsAllMustDrop)
{
    PageNum p = mem.allocOne(3);
    mem.getRef(p);
    mem.getRef(p);
    mem.release(p);
    mem.putRef(p);
    EXPECT_EQ(mem.ownerOf(p), 3u); // one pin remains
    mem.putRef(p);
    EXPECT_EQ(mem.ownerOf(p), kDomFree);
}

TEST_F(MemFixture, TransferOwnershipFlips)
{
    PageNum p = mem.allocOne(3);
    mem.transferOwnership(p, 5);
    EXPECT_TRUE(mem.ownedBy(p, 5));
}

TEST_F(MemFixture, DmaAccessibleByOwnerAndMapper)
{
    PageNum p = mem.allocOne(3);
    EXPECT_TRUE(mem.dmaAccessibleBy(p, 3));
    EXPECT_FALSE(mem.dmaAccessibleBy(p, 4));
    mem.noteGrantMapped(p, 4);
    EXPECT_TRUE(mem.dmaAccessibleBy(p, 4));
    mem.clearGrantMapped(p);
    EXPECT_FALSE(mem.dmaAccessibleBy(p, 4));
}

TEST_F(MemFixture, DmaAccessChecksOwnershipAtAccessTime)
{
    PageNum p = mem.allocOne(3);
    EXPECT_TRUE(mem.noteDmaAccess(p, 3, true));
    EXPECT_EQ(mem.violationCount(), 0u);

    // Reallocate to another domain, then DMA on behalf of the old one.
    mem.release(p);
    mem.transferOwnership(mem.allocOne(5), 5); // no-op reassign, keeps p free
    auto q = mem.alloc(6, 1024 - 2);           // eventually reuses p
    (void)q;
    EXPECT_FALSE(mem.noteDmaAccess(p, 3, true));
    EXPECT_GE(mem.violationCount(), 1u);
    ASSERT_FALSE(mem.violations().empty());
    EXPECT_EQ(mem.violations().back().expected, 3u);
}

TEST_F(MemFixture, PageAddrRoundTrip)
{
    EXPECT_EQ(pageOf(addrOf(42)), 42u);
    EXPECT_EQ(pageOf(addrOf(42) + kPageSize - 1), 42u);
    EXPECT_EQ(pageOf(addrOf(42) + kPageSize), 43u);
}

// --------------------------------------------------------- grant table ----

TEST_F(MemFixture, GrantMapUnmapLifecycle)
{
    GrantTable gt(ctx, mem);
    PageNum p = mem.allocOne(2);
    GrantRef ref = gt.grantAccess(2, 1, p);
    ASSERT_NE(ref, kInvalidGrant);

    PageNum mapped = 0;
    EXPECT_TRUE(gt.mapGrant(ref, 1, &mapped));
    EXPECT_EQ(mapped, p);
    EXPECT_EQ(mem.refCount(p), 1u);
    EXPECT_TRUE(mem.dmaAccessibleBy(p, 1));

    // Cannot end a grant while mapped.
    EXPECT_FALSE(gt.endGrant(ref, 2));
    EXPECT_TRUE(gt.unmapGrant(ref, 1));
    EXPECT_EQ(mem.refCount(p), 0u);
    EXPECT_TRUE(gt.endGrant(ref, 2));
    EXPECT_EQ(gt.activeGrants(), 0u);
}

TEST_F(MemFixture, GrantOfForeignPageDenied)
{
    GrantTable gt(ctx, mem);
    PageNum p = mem.allocOne(2);
    EXPECT_EQ(gt.grantAccess(3, 1, p), kInvalidGrant);
}

TEST_F(MemFixture, MapByWrongDomainDenied)
{
    GrantTable gt(ctx, mem);
    PageNum p = mem.allocOne(2);
    GrantRef ref = gt.grantAccess(2, 1, p);
    EXPECT_FALSE(gt.mapGrant(ref, 9, nullptr));
}

TEST_F(MemFixture, MapFailsAfterOwnershipChanged)
{
    GrantTable gt(ctx, mem);
    PageNum p = mem.allocOne(2);
    GrantRef ref = gt.grantAccess(2, 1, p);
    mem.transferOwnership(p, 5);
    EXPECT_FALSE(gt.mapGrant(ref, 1, nullptr));
}

TEST_F(MemFixture, TransferPageRequiresUnpinned)
{
    GrantTable gt(ctx, mem);
    PageNum p = mem.allocOne(2);
    mem.getRef(p);
    EXPECT_FALSE(gt.transferPage(2, 3, p));
    mem.putRef(p);
    EXPECT_TRUE(gt.transferPage(2, 3, p));
    EXPECT_TRUE(mem.ownedBy(p, 3));
    EXPECT_EQ(gt.flipCount(), 1u);
}

// ------------------------------------------------------------- pci bus ----

TEST(PciBus, TransferTiming)
{
    sim::SimContext ctx;
    // 100 MB/s, 100 ns setup => 1 KB takes 100ns + 10us.
    PciBus bus(ctx, "pci", 100.0e6, sim::nanoseconds(100));
    sim::Time done_at = 0;
    bus.transfer(1000, [&] { done_at = ctx.now(); });
    ctx.events().run();
    EXPECT_EQ(done_at, sim::nanoseconds(100) + sim::microseconds(10));
    EXPECT_EQ(bus.bytesCarried(), 1000u);
}

TEST(PciBus, SerializesBackToBack)
{
    sim::SimContext ctx;
    PciBus bus(ctx, "pci", 100.0e6, 0);
    sim::Time first = 0, second = 0;
    bus.transfer(1000, [&] { first = ctx.now(); });
    bus.transfer(1000, [&] { second = ctx.now(); });
    ctx.events().run();
    EXPECT_EQ(second, 2 * first);
    EXPECT_NEAR(bus.utilization(ctx.now()), 1.0, 1e-9);
}

TEST(PciBus, EstimateMatchesTransfer)
{
    sim::SimContext ctx;
    PciBus bus(ctx, "pci");
    sim::Time est = bus.estimate(4096);
    sim::Time got = bus.transfer(4096, [] {});
    EXPECT_EQ(est, got);
}

// ----------------------------------------------------------- dma engine ----

namespace {

struct DmaFixture : ::testing::Test
{
    sim::SimContext ctx;
    PhysMemory mem{ctx, 256};
    PciBus bus{ctx, "pci"};
};

} // namespace

TEST_F(DmaFixture, SgBytesSums)
{
    SgList sg{{0, 100}, {4096, 50}};
    EXPECT_EQ(sgBytes(sg), 150u);
}

TEST_F(DmaFixture, ReadTouchesEveryPage)
{
    DmaEngine dma(ctx, "dma", bus, mem, 0);
    auto pages = mem.alloc(4, 3);
    // One SG entry spanning all three pages.
    SgList sg{{addrOf(pages[0]), 3 * static_cast<std::uint32_t>(kPageSize)}};
    bool done = false;
    dma.read(sg, 4, kWholeDevice, [&](DmaResult r) {
        done = true;
        EXPECT_TRUE(r.safe);
    });
    ctx.events().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(mem.violationCount(), 0u);
    EXPECT_EQ(dma.bytesRead(), 3 * kPageSize);
}

TEST_F(DmaFixture, WrongOwnerFlagsViolation)
{
    DmaEngine dma(ctx, "dma", bus, mem, 0);
    PageNum p = mem.allocOne(4);
    SgList sg{{addrOf(p), 64}};
    bool safe = true;
    dma.write(sg, 9, kWholeDevice, [&](DmaResult r) { safe = r.safe; });
    ctx.events().run();
    EXPECT_FALSE(safe);
    EXPECT_EQ(mem.violationCount(), 1u);
}

TEST_F(DmaFixture, IommuBlocksSuppressAccess)
{
    Iommu iommu(ctx, mem, Iommu::Mode::kPerDevice);
    DmaEngine dma(ctx, "dma", bus, mem, 0, &iommu);
    PageNum p = mem.allocOne(4);
    iommu.bindDevice(0, 5); // device bound to a different domain
    SgList sg{{addrOf(p), 64}};
    DmaResult result;
    dma.write(sg, 4, kWholeDevice, [&](DmaResult r) { result = r; });
    ctx.events().run();
    EXPECT_EQ(result.blockedPages, 1u);
    // The access never reached memory: no corruption recorded.
    EXPECT_EQ(mem.violationCount(), 0u);
}

// ---------------------------------------------------------------- iommu ----

TEST_F(DmaFixture, IommuNoneAllowsAll)
{
    Iommu iommu(ctx, mem, Iommu::Mode::kNone);
    EXPECT_EQ(iommu.check(0, 0, 999999), IommuVerdict::kAllowed);
}

TEST_F(DmaFixture, IommuPerDeviceOwnership)
{
    Iommu iommu(ctx, mem, Iommu::Mode::kPerDevice);
    PageNum p = mem.allocOne(4);
    EXPECT_EQ(iommu.check(0, kWholeDevice, p),
              IommuVerdict::kBlockedNoBinding);
    iommu.bindDevice(0, 4);
    EXPECT_EQ(iommu.check(0, kWholeDevice, p), IommuVerdict::kAllowed);
    iommu.bindDevice(0, 5);
    EXPECT_EQ(iommu.check(0, kWholeDevice, p),
              IommuVerdict::kBlockedOwnership);
}

TEST_F(DmaFixture, IommuPerContextBindings)
{
    // Section 5.3: a per-device IOMMU is insufficient for CDNA; the
    // per-context extension lets each context touch only its domain.
    Iommu iommu(ctx, mem, Iommu::Mode::kPerContext);
    PageNum pa = mem.allocOne(4);
    PageNum pb = mem.allocOne(5);
    iommu.bindContext(0, 1, 4);
    iommu.bindContext(0, 2, 5);
    EXPECT_EQ(iommu.check(0, 1, pa), IommuVerdict::kAllowed);
    EXPECT_EQ(iommu.check(0, 2, pb), IommuVerdict::kAllowed);
    EXPECT_EQ(iommu.check(0, 1, pb), IommuVerdict::kBlockedOwnership);
    EXPECT_EQ(iommu.check(0, 2, pa), IommuVerdict::kBlockedOwnership);
    iommu.unbindContext(0, 2);
    EXPECT_EQ(iommu.check(0, 2, pb), IommuVerdict::kBlockedNoBinding);
}

TEST_F(DmaFixture, IommuPerContextWholeDeviceFallsBack)
{
    Iommu iommu(ctx, mem, Iommu::Mode::kPerContext);
    PageNum hv = mem.allocOne(kDomHypervisor);
    iommu.bindDevice(0, kDomHypervisor);
    EXPECT_EQ(iommu.check(0, kWholeDevice, hv), IommuVerdict::kAllowed);
}
