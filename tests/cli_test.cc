/**
 * @file
 * Unit tests for the command-line front end: argument parsing, config
 * mapping, the option table, fault-injection flags, error handling,
 * ObservabilitySession, and JSON report rendering.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/cli.hh"
#include "core/fault_plan.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

std::optional<CliOptions>
parse(std::initializer_list<const char *> args, std::string *err = nullptr)
{
    std::vector<std::string> v(args.begin(), args.end());
    std::string local;
    return parseCli(v, err ? err : &local);
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

bool
fileExists(const std::string &path)
{
    std::ifstream f(path);
    return f.good();
}

} // namespace

TEST(Cli, DefaultsAreCdnaTransmit)
{
    auto opt = parse({});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->config.mode, IoMode::kCdna);
    EXPECT_TRUE(opt->config.transmitDir);
    EXPECT_EQ(opt->config.numGuests, 1u);
    EXPECT_EQ(opt->config.numNics, 2u);
    EXPECT_TRUE(opt->config.dmaProtection);
    EXPECT_FALSE(opt->json);
    EXPECT_FALSE(opt->help);
}

TEST(Cli, ModeSelection)
{
    EXPECT_EQ(parse({"--mode", "native"})->config.mode, IoMode::kNative);
    EXPECT_EQ(parse({"--mode", "xen"})->config.mode, IoMode::kXen);
    EXPECT_EQ(parse({"--mode", "cdna"})->config.mode, IoMode::kCdna);
    EXPECT_EQ(parse({"--mode", "xen", "--nic", "rice"})->config.nicKind,
              NicKind::kRice);
    std::string err;
    EXPECT_FALSE(parse({"--mode", "vmware"}, &err).has_value());
    EXPECT_NE(err.find("--mode"), std::string::npos);
}

TEST(Cli, TopologyAndWorkload)
{
    auto opt = parse({"--guests", "8", "--nics", "3", "--direction", "rx",
                      "--connections", "5", "--seed", "9"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->config.numGuests, 8u);
    EXPECT_EQ(opt->config.numNics, 3u);
    EXPECT_FALSE(opt->config.transmitDir);
    EXPECT_EQ(opt->config.connectionsPerVif, 5u);
    EXPECT_EQ(opt->config.seed, 9u);
}

TEST(Cli, ProtectionAndIommu)
{
    auto opt = parse({"--no-protection", "--iommu", "context"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_FALSE(opt->config.dmaProtection);
    EXPECT_EQ(opt->config.iommuMode, mem::Iommu::Mode::kPerContext);
    EXPECT_EQ(parse({"--iommu", "device"})->config.iommuMode,
              mem::Iommu::Mode::kPerDevice);
}

TEST(Cli, RunControl)
{
    auto opt = parse({"--warmup", "50", "--seconds", "2", "--json"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->warmup, sim::milliseconds(50));
    EXPECT_EQ(opt->measure, sim::seconds(2));
    EXPECT_TRUE(opt->json);
}

TEST(Cli, HelpShortCircuits)
{
    auto opt = parse({"--help"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_TRUE(opt->help);
    EXPECT_FALSE(cliUsage().empty());
}

TEST(Cli, ErrorsAreReported)
{
    std::string err;
    EXPECT_FALSE(parse({"--guests"}, &err).has_value());
    EXPECT_FALSE(parse({"--guests", "zero"}, &err).has_value());
    EXPECT_FALSE(parse({"--guests", "0"}, &err).has_value());
    EXPECT_FALSE(parse({"--seconds", "-1"}, &err).has_value());
    EXPECT_FALSE(parse({"--direction", "sideways"}, &err).has_value());
    EXPECT_FALSE(parse({"--nonsense"}, &err).has_value());
    EXPECT_NE(err.find("--nonsense"), std::string::npos);
}

// ----------------------------------------------------- option table ----

TEST(Cli, OptionTableDrivesUsageText)
{
    std::string usage = cliUsage();
    ASSERT_FALSE(cliOptionTable().empty());
    for (const CliOptionSpec &s : cliOptionTable()) {
        EXPECT_NE(usage.find(s.name), std::string::npos) << s.name;
        EXPECT_NE(usage.find(s.group + ":"), std::string::npos) << s.group;
        if (s.takesValue()) {
            EXPECT_NE(usage.find(s.name + " " + s.argName),
                      std::string::npos)
                << s.name;
        }
    }
}

TEST(Cli, EveryTableOptionIsParsed)
{
    // Any option in the table must be recognized by the parser: it may
    // reject a bogus value, but never as "unknown option".
    for (const CliOptionSpec &s : cliOptionTable()) {
        std::vector<std::string> args{s.name};
        if (s.takesValue())
            args.push_back("0");
        std::string err;
        auto opt = parseCli(args, &err);
        if (!opt) {
            EXPECT_EQ(err.find("unknown option"), std::string::npos)
                << s.name << ": " << err;
        }
    }
}

// ------------------------------------------------------- fault flags ----

TEST(CliFault, FaultFlagsBuildPlan)
{
    auto opt = parse({"--drop-rate", "0.01", "--corrupt-rate=0.002",
                      "--dup-rate", "0.001", "--dma-delay-rate", "0.05",
                      "--dma-delay-us", "30", "--firmware-stall", "0@20:5",
                      "--kill-guest", "1@40"});
    ASSERT_TRUE(opt.has_value());
    const FaultPlan &p = opt->config.faults;
    EXPECT_FALSE(p.empty());
    EXPECT_DOUBLE_EQ(p.dropRate, 0.01);
    EXPECT_DOUBLE_EQ(p.corruptRate, 0.002);
    EXPECT_DOUBLE_EQ(p.dupRate, 0.001);
    EXPECT_DOUBLE_EQ(p.dmaDelayRate, 0.05);
    EXPECT_DOUBLE_EQ(p.dmaDelayUs, 30.0);
    ASSERT_EQ(p.firmwareStalls.size(), 1u);
    EXPECT_EQ(p.firmwareStalls[0].nic, 0u);
    EXPECT_DOUBLE_EQ(p.firmwareStalls[0].atMs, 20.0);
    EXPECT_DOUBLE_EQ(p.firmwareStalls[0].durMs, 5.0);
    EXPECT_TRUE(p.firmwareStalls[0].watchdogReset);
    ASSERT_EQ(p.guestKills.size(), 1u);
    EXPECT_EQ(p.guestKills[0].guest, 1u);
    EXPECT_DOUBLE_EQ(p.guestKills[0].atMs, 40.0);
}

TEST(CliFault, DefaultPlanIsEmpty)
{
    auto opt = parse({});
    ASSERT_TRUE(opt.has_value());
    EXPECT_TRUE(opt->config.faults.empty());
}

TEST(CliFault, DmaDelayRateGetsDefaultLatency)
{
    auto opt = parse({"--dma-delay-rate", "0.1"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_DOUBLE_EQ(opt->config.faults.dmaDelayUs, 25.0);
}

TEST(CliFault, BadFaultFlagsRejected)
{
    std::string err;
    EXPECT_FALSE(parse({"--drop-rate", "1.5"}, &err).has_value());
    EXPECT_NE(err.find("--drop-rate"), std::string::npos);
    EXPECT_FALSE(parse({"--corrupt-rate", "-0.1"}, &err).has_value());
    EXPECT_FALSE(parse({"--dma-delay-us", "0"}, &err).has_value());
    EXPECT_FALSE(parse({"--firmware-stall", "abc"}, &err).has_value());
    EXPECT_NE(err.find("--firmware-stall"), std::string::npos);
    EXPECT_FALSE(parse({"--kill-guest", "1:40"}, &err).has_value());
    std::string missing = tempPath("no-such-plan.txt");
    EXPECT_FALSE(parse({"--fault-plan", missing.c_str()}, &err).has_value());
}

TEST(CliFault, FaultPlanFileLoaded)
{
    std::string path = tempPath("cli_fault_plan.txt");
    {
        std::ofstream f(path);
        f << "# test plan\n"
             "drop-rate 0.02\n"
             "firmware-stall 1@10:2 no-reset\n"
             "kill-guest 0@30\n";
    }
    auto opt = parse({"--fault-plan", path.c_str(), "--dup-rate", "0.005"});
    std::remove(path.c_str());
    ASSERT_TRUE(opt.has_value());
    const FaultPlan &p = opt->config.faults;
    EXPECT_DOUBLE_EQ(p.dropRate, 0.02);
    EXPECT_DOUBLE_EQ(p.dupRate, 0.005); // flag after the file still applies
    ASSERT_EQ(p.firmwareStalls.size(), 1u);
    EXPECT_EQ(p.firmwareStalls[0].nic, 1u);
    EXPECT_FALSE(p.firmwareStalls[0].watchdogReset);
    ASSERT_EQ(p.guestKills.size(), 1u);
    EXPECT_EQ(p.guestKills[0].guest, 0u);
}

// ----------------------------------------------------- observability ----

TEST(Cli, ObservabilityFlags)
{
    auto opt = parse({"--trace", "out.json", "--trace-filter", "cdna,cpu",
                      "--stats-json", "stats.json", "--sample-period",
                      "50"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->traceFile, "out.json");
    EXPECT_EQ(opt->traceFilter, "cdna,cpu");
    EXPECT_EQ(opt->statsJsonFile, "stats.json");
    EXPECT_EQ(opt->samplePeriod, sim::microseconds(50.0));

    auto defaults = parse({});
    ASSERT_TRUE(defaults.has_value());
    EXPECT_TRUE(defaults->traceFile.empty());
    EXPECT_TRUE(defaults->statsJsonFile.empty());
    EXPECT_EQ(defaults->samplePeriod, 0);

    std::string err;
    EXPECT_FALSE(parse({"--trace"}, &err).has_value());
    EXPECT_FALSE(parse({"--sample-period", "-3"}, &err).has_value());
}

TEST(Cli, ObservabilitySessionWritesOnClose)
{
    std::string trace = tempPath("cli_obs_trace.json");
    std::string stats = tempPath("cli_obs_stats.json");
    auto opt = parse({"--trace", trace.c_str(), "--stats-json",
                      stats.c_str(), "--guests", "1"});
    ASSERT_TRUE(opt.has_value());

    System sys(opt->config);
    ObservabilitySession session(sys, *opt);
    sys.run(sim::milliseconds(1), sim::milliseconds(2));
    std::string err;
    EXPECT_TRUE(session.close(&err)) << err;
    EXPECT_TRUE(fileExists(trace));
    EXPECT_TRUE(fileExists(stats));
    std::remove(trace.c_str());
    std::remove(stats.c_str());
}

TEST(Cli, ObservabilitySessionFlushesOnDestruction)
{
    std::string stats = tempPath("cli_obs_dtor_stats.json");
    auto opt = parse({"--stats-json", stats.c_str()});
    ASSERT_TRUE(opt.has_value());
    {
        System sys(opt->config);
        ObservabilitySession session(sys, *opt);
        sys.run(sim::milliseconds(1), sim::milliseconds(2));
        // No close(): the destructor must still write the file.
    }
    EXPECT_TRUE(fileExists(stats));
    std::remove(stats.c_str());
}

TEST(Cli, ObservabilitySessionReportsWriteErrors)
{
    std::string bad = tempPath("no-such-dir/stats.json");
    auto opt = parse({"--stats-json", bad.c_str()});
    ASSERT_TRUE(opt.has_value());
    System sys(opt->config);
    ObservabilitySession session(sys, *opt);
    sys.run(sim::milliseconds(1), sim::milliseconds(1));
    std::string err;
    EXPECT_FALSE(session.close(&err));
    EXPECT_NE(err.find(bad), std::string::npos);
}

// --------------------------------------------------------------- misc ----

TEST(Cli, EqualsFormAccepted)
{
    auto opt = parse({"--trace=out.json", "--guests=4", "--mode=xen",
                      "--stats-json=s.json"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->traceFile, "out.json");
    EXPECT_EQ(opt->config.numGuests, 4u);
    EXPECT_EQ(opt->config.mode, IoMode::kXen);
    EXPECT_EQ(opt->statsJsonFile, "s.json");
}

TEST(Cli, JsonContainsAllKeys)
{
    Report r;
    r.label = "test/tx";
    r.mbps = 1867.5;
    r.idlePct = 50.8;
    r.perGuestMbps = {933.7, 933.8};
    r.protectionFaults = 2;
    r.faultFramesDropped = 7;
    r.mailboxTimeouts = 3;
    std::string json = reportToJson(r);
    for (const char *key :
         {"\"label\"", "\"mbps\"", "\"hyp_pct\"", "\"idle_pct\"",
          "\"guest_intr_per_sec\"", "\"latency_p99_us\"", "\"fairness\"",
          "\"protection_faults\"", "\"dma_violations\"",
          "\"rx_drops_no_desc\"", "\"rx_drops_no_buf\"",
          "\"rx_drops_filter\"", "\"frames_dropped\"",
          "\"frames_corrupted\"", "\"frames_duplicated\"",
          "\"dma_delays\"", "\"firmware_stalls\"", "\"guest_kills\"",
          "\"mailbox_timeouts\"", "\"ring_resyncs\"",
          "\"per_guest_mbps\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_NE(json.find("test/tx"), std::string::npos);
    EXPECT_NE(json.find("1867.5"), std::string::npos);
    EXPECT_NE(json.find("933.70, 933.80"), std::string::npos);
    EXPECT_NE(json.find("\"frames_dropped\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"mailbox_timeouts\": 3"), std::string::npos);

    // Stable key order: fault counters sit between the protection
    // counters and the per-guest array.
    EXPECT_LT(json.find("\"dma_violations\""),
              json.find("\"frames_dropped\""));
    EXPECT_LT(json.find("\"frames_dropped\""),
              json.find("\"ring_resyncs\""));
    EXPECT_LT(json.find("\"ring_resyncs\""),
              json.find("\"per_guest_mbps\""));
}
