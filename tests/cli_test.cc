/**
 * @file
 * Unit tests for the command-line front end: argument parsing, config
 * mapping, error handling, and JSON report rendering.
 */

#include <gtest/gtest.h>

#include "core/cli.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

std::optional<CliOptions>
parse(std::initializer_list<const char *> args, std::string *err = nullptr)
{
    std::vector<std::string> v(args.begin(), args.end());
    std::string local;
    return parseCli(v, err ? err : &local);
}

} // namespace

TEST(Cli, DefaultsAreCdnaTransmit)
{
    auto opt = parse({});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->config.mode, IoMode::kCdna);
    EXPECT_TRUE(opt->config.transmit);
    EXPECT_EQ(opt->config.numGuests, 1u);
    EXPECT_EQ(opt->config.numNics, 2u);
    EXPECT_TRUE(opt->config.dmaProtection);
    EXPECT_FALSE(opt->json);
    EXPECT_FALSE(opt->help);
}

TEST(Cli, ModeSelection)
{
    EXPECT_EQ(parse({"--mode", "native"})->config.mode, IoMode::kNative);
    EXPECT_EQ(parse({"--mode", "xen"})->config.mode, IoMode::kXen);
    EXPECT_EQ(parse({"--mode", "cdna"})->config.mode, IoMode::kCdna);
    EXPECT_EQ(parse({"--mode", "xen", "--nic", "rice"})->config.nicKind,
              NicKind::kRice);
    std::string err;
    EXPECT_FALSE(parse({"--mode", "vmware"}, &err).has_value());
    EXPECT_NE(err.find("--mode"), std::string::npos);
}

TEST(Cli, TopologyAndWorkload)
{
    auto opt = parse({"--guests", "8", "--nics", "3", "--direction", "rx",
                      "--connections", "5", "--seed", "9"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->config.numGuests, 8u);
    EXPECT_EQ(opt->config.numNics, 3u);
    EXPECT_FALSE(opt->config.transmit);
    EXPECT_EQ(opt->config.connectionsPerVif, 5u);
    EXPECT_EQ(opt->config.seed, 9u);
}

TEST(Cli, ProtectionAndIommu)
{
    auto opt = parse({"--no-protection", "--iommu", "context"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_FALSE(opt->config.dmaProtection);
    EXPECT_EQ(opt->config.iommuMode, mem::Iommu::Mode::kPerContext);
    EXPECT_EQ(parse({"--iommu", "device"})->config.iommuMode,
              mem::Iommu::Mode::kPerDevice);
}

TEST(Cli, RunControl)
{
    auto opt = parse({"--warmup", "50", "--seconds", "2", "--json"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->warmup, sim::milliseconds(50));
    EXPECT_EQ(opt->measure, sim::seconds(2));
    EXPECT_TRUE(opt->json);
}

TEST(Cli, HelpShortCircuits)
{
    auto opt = parse({"--help"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_TRUE(opt->help);
    EXPECT_FALSE(cliUsage().empty());
}

TEST(Cli, ErrorsAreReported)
{
    std::string err;
    EXPECT_FALSE(parse({"--guests"}, &err).has_value());
    EXPECT_FALSE(parse({"--guests", "zero"}, &err).has_value());
    EXPECT_FALSE(parse({"--guests", "0"}, &err).has_value());
    EXPECT_FALSE(parse({"--seconds", "-1"}, &err).has_value());
    EXPECT_FALSE(parse({"--direction", "sideways"}, &err).has_value());
    EXPECT_FALSE(parse({"--nonsense"}, &err).has_value());
    EXPECT_NE(err.find("--nonsense"), std::string::npos);
}

TEST(Cli, ObservabilityFlags)
{
    auto opt = parse({"--trace", "out.json", "--trace-filter", "cdna,cpu",
                      "--stats-json", "stats.json", "--sample-period",
                      "50"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->traceFile, "out.json");
    EXPECT_EQ(opt->traceFilter, "cdna,cpu");
    EXPECT_EQ(opt->statsJsonFile, "stats.json");
    EXPECT_EQ(opt->samplePeriod, sim::microseconds(50.0));

    auto defaults = parse({});
    ASSERT_TRUE(defaults.has_value());
    EXPECT_TRUE(defaults->traceFile.empty());
    EXPECT_TRUE(defaults->statsJsonFile.empty());
    EXPECT_EQ(defaults->samplePeriod, 0);

    std::string err;
    EXPECT_FALSE(parse({"--trace"}, &err).has_value());
    EXPECT_FALSE(parse({"--sample-period", "-3"}, &err).has_value());
}

TEST(Cli, EqualsFormAccepted)
{
    auto opt = parse({"--trace=out.json", "--guests=4", "--mode=xen",
                      "--stats-json=s.json"});
    ASSERT_TRUE(opt.has_value());
    EXPECT_EQ(opt->traceFile, "out.json");
    EXPECT_EQ(opt->config.numGuests, 4u);
    EXPECT_EQ(opt->config.mode, IoMode::kXen);
    EXPECT_EQ(opt->statsJsonFile, "s.json");
}

TEST(Cli, JsonContainsAllKeys)
{
    Report r;
    r.label = "test/tx";
    r.mbps = 1867.5;
    r.idlePct = 50.8;
    r.perGuestMbps = {933.7, 933.8};
    r.protectionFaults = 2;
    std::string json = reportToJson(r);
    for (const char *key :
         {"\"label\"", "\"mbps\"", "\"hyp_pct\"", "\"idle_pct\"",
          "\"guest_intr_per_sec\"", "\"latency_p99_us\"", "\"fairness\"",
          "\"protection_faults\"", "\"dma_violations\"",
          "\"per_guest_mbps\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_NE(json.find("test/tx"), std::string::npos);
    EXPECT_NE(json.find("1867.5"), std::string::npos);
    EXPECT_NE(json.find("933.70, 933.80"), std::string::npos);
}
