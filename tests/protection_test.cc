/**
 * @file
 * Unit tests for DmaProtection, the hypervisor half of CDNA's DMA
 * memory protection (paper section 3.3): ownership validation, page
 * pinning with lazy unpin, sequence-number stamping, ring-full
 * handling, and the unprotected direct path.
 */

#include <gtest/gtest.h>

#include "core/cdna_nic.hh"
#include "core/dma_protection.hh"
#include "net/eth_link.hh"
#include "net/traffic_peer.hh"
#include "sim/sim_object.hh"

using namespace cdna;
using namespace cdna::core;

namespace {

struct ProtFixture : ::testing::Test
{
    sim::SimContext ctx;
    mem::PhysMemory mem{ctx, 8192};
    cpu::SimCpu cpu{ctx, "cpu"};
    vmm::Hypervisor hv{ctx, cpu, mem};
    mem::PciBus bus{ctx, "pci"};
    net::EthLink link{ctx, "eth"};
    net::TrafficPeer peer{ctx, "peer", link};
    CostModel costs;
    CdnaNic nic{ctx, "cdna", bus, mem, 0, link};

    vmm::Domain *guest = nullptr;
    CdnaNic::ContextId cxt = 0;

    void
    SetUp() override
    {
        guest = &hv.createDomain(vmm::Domain::Kind::kGuest, "g");
        auto c = nic.allocContext(guest->id(), net::MacAddr::fromId(1));
        ASSERT_TRUE(c.has_value());
        cxt = *c;
        nic.configureContextRings(cxt, 8, mem::addrOf(mem.allocOne(guest->id())),
                                  8, mem::addrOf(mem.allocOne(guest->id())));
        nic.setFaultHandler([this](CdnaNic::ContextId, mem::DomainId dom,
                                   vmm::Fault f) { hv.recordFault(dom, f); });
    }

    DmaProtection::Request
    makeReq(mem::PageNum page, std::uint32_t len = 1000)
    {
        DmaProtection::Request r;
        r.sg = {{mem::addrOf(page), len}};
        net::Packet p;
        p.dst = peer.mac();
        p.payloadBytes = len;
        p.hostSg = r.sg;
        p.srcDomain = guest->id();
        r.pkt = std::move(p);
        return r;
    }
};

} // namespace

TEST_F(ProtFixture, ValidEnqueueStampsAndPins)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);

    mem::PageNum page = mem.allocOne(guest->id());
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(makeReq(page));

    DmaProtection::Result res;
    bool done = false;
    prot.enqueue(h, std::move(reqs), [&](DmaProtection::Result r) {
        res = r;
        done = true;
    });
    ctx.events().run();

    ASSERT_TRUE(done);
    EXPECT_EQ(res.fault, vmm::Fault::kNone);
    EXPECT_EQ(res.accepted, 1u);
    EXPECT_EQ(res.producer, 1u);
    EXPECT_EQ(mem.refCount(page), 1u); // pinned for the DMA
    const auto &desc = nic.txRing(cxt).at(0);
    EXPECT_TRUE(desc.valid());
    EXPECT_EQ(desc.seqno, 1u);
    EXPECT_EQ(prot.pagesPinned(), 1u);
}

TEST_F(ProtFixture, ForeignPageRejected)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);

    vmm::Domain &victim = hv.createDomain(vmm::Domain::Kind::kGuest, "v");
    mem::PageNum stolen = mem.allocOne(victim.id());

    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(makeReq(stolen));
    DmaProtection::Result res;
    prot.enqueue(h, std::move(reqs),
                 [&](DmaProtection::Result r) { res = r; });
    ctx.events().run();

    EXPECT_EQ(res.fault, vmm::Fault::kNotOwner);
    EXPECT_EQ(res.accepted, 0u);
    EXPECT_EQ(mem.refCount(stolen), 0u);
    EXPECT_FALSE(nic.txRing(cxt).at(0).valid());
    EXPECT_EQ(prot.validationFailures(), 1u);
    EXPECT_EQ(hv.faultCount(guest->id(), vmm::Fault::kNotOwner), 1u);
}

TEST_F(ProtFixture, BatchStopsAtFirstBadDescriptor)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);
    vmm::Domain &victim = hv.createDomain(vmm::Domain::Kind::kGuest, "v");

    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(makeReq(mem.allocOne(guest->id())));
    reqs.push_back(makeReq(mem.allocOne(victim.id()))); // bad
    reqs.push_back(makeReq(mem.allocOne(guest->id())));

    DmaProtection::Result res;
    prot.enqueue(h, std::move(reqs),
                 [&](DmaProtection::Result r) { res = r; });
    ctx.events().run();

    EXPECT_EQ(res.fault, vmm::Fault::kNotOwner);
    EXPECT_EQ(res.accepted, 1u); // only the first got in
    EXPECT_EQ(res.producer, 1u);
}

TEST_F(ProtFixture, LazyUnpinAfterCompletion)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);

    mem::PageNum first = mem.allocOne(guest->id());
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(makeReq(first));
    prot.enqueue(h, std::move(reqs), [&](DmaProtection::Result r) {
        nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, r.producer);
    });
    ctx.events().run(); // transmit completes; consumer advances
    EXPECT_EQ(nic.txConsumer(cxt), 1u);
    // Still pinned: unpin is lazy ("only when additional DMA
    // descriptors are enqueued").
    EXPECT_EQ(mem.refCount(first), 1u);

    // The next enqueue performs the deferred unpin.
    std::vector<DmaProtection::Request> more;
    more.push_back(makeReq(mem.allocOne(guest->id())));
    prot.enqueue(h, std::move(more), {});
    ctx.events().run();
    EXPECT_EQ(mem.refCount(first), 0u);
    EXPECT_EQ(prot.pagesUnpinned(), 1u);
}

TEST_F(ProtFixture, FreedPageStaysUntilDmaDone)
{
    // The reallocation-delay guarantee: the guest releases a page right
    // after enqueueing it; the release must be deferred until the NIC
    // is done with it.
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);

    mem::PageNum page = mem.allocOne(guest->id());
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(makeReq(page));
    prot.enqueue(h, std::move(reqs), [&](DmaProtection::Result r) {
        // Malicious/buggy: free the page immediately after enqueue.
        EXPECT_FALSE(mem.release(page)); // deferred, still pinned
        nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, r.producer);
    });
    ctx.events().run();
    // DMA has completed safely; no corruption was possible.
    EXPECT_EQ(mem.violationCount(), 0u);
    EXPECT_EQ(mem.ownerOf(page), guest->id()); // still deferred

    std::vector<DmaProtection::Request> more;
    more.push_back(makeReq(mem.allocOne(guest->id())));
    prot.enqueue(h, std::move(more), {});
    ctx.events().run();
    // Unpinned -> the deferred release finally happened.
    EXPECT_EQ(mem.ownerOf(page), mem::kDomFree);
}

TEST_F(ProtFixture, RingFullRejected)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);

    std::vector<DmaProtection::Request> reqs;
    for (int i = 0; i < 10; ++i) // ring holds 8
        reqs.push_back(makeReq(mem.allocOne(guest->id())));
    DmaProtection::Result res;
    prot.enqueue(h, std::move(reqs),
                 [&](DmaProtection::Result r) { res = r; });
    ctx.events().run();
    EXPECT_EQ(res.fault, vmm::Fault::kRingFull);
    EXPECT_EQ(res.accepted, 8u);
}

TEST_F(ProtFixture, SyncUnpinReleasesCompleted)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);
    mem::PageNum page = mem.allocOne(guest->id());
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(makeReq(page));
    prot.enqueue(h, std::move(reqs), [&](DmaProtection::Result r) {
        nic.pioWriteMailbox(cxt, nic::kMboxTxProducer, r.producer);
    });
    ctx.events().run();
    EXPECT_EQ(mem.refCount(page), 1u);
    prot.syncUnpin(h);
    EXPECT_EQ(mem.refCount(page), 0u);
}

TEST_F(ProtFixture, UnpinAllAtTeardown)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);
    std::vector<mem::PageNum> pages;
    std::vector<DmaProtection::Request> reqs;
    for (int i = 0; i < 4; ++i) {
        pages.push_back(mem.allocOne(guest->id()));
        reqs.push_back(makeReq(pages.back()));
    }
    prot.enqueue(h, std::move(reqs), {});
    ctx.events().run();
    for (auto p : pages)
        EXPECT_EQ(mem.refCount(p), 1u);
    prot.unpinAll(h);
    for (auto p : pages)
        EXPECT_EQ(mem.refCount(p), 0u);
}

TEST_F(ProtFixture, DirectEnqueueSkipsEverything)
{
    DmaProtection prot(ctx, hv, costs, false);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);

    vmm::Domain &victim = hv.createDomain(vmm::Domain::Kind::kGuest, "v");
    mem::PageNum stolen = mem.allocOne(victim.id());

    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(makeReq(stolen)); // would be rejected with protection
    auto res = prot.enqueueDirect(h, std::move(reqs));
    EXPECT_EQ(res.fault, vmm::Fault::kNone);
    EXPECT_EQ(res.accepted, 1u);
    EXPECT_EQ(mem.refCount(stolen), 0u); // nothing pinned
    EXPECT_EQ(nic.txRing(cxt).at(0).seqno, 0u); // nothing stamped
    EXPECT_EQ(hv.hypercallCount(), 0u); // no hypervisor involvement
}

TEST_F(ProtFixture, MultiPageScatterGatherValidatedPerPage)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);
    vmm::Domain &victim = hv.createDomain(vmm::Domain::Kind::kGuest, "v");

    mem::PageNum mine = mem.allocOne(guest->id());
    mem::PageNum theirs = mem.allocOne(victim.id());
    DmaProtection::Request r;
    r.sg = {{mem::addrOf(mine), 4096}, {mem::addrOf(theirs), 4096}};
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(std::move(r));

    DmaProtection::Result res;
    prot.enqueue(h, std::move(reqs),
                 [&](DmaProtection::Result out) { res = out; });
    ctx.events().run();
    EXPECT_EQ(res.fault, vmm::Fault::kNotOwner);
    EXPECT_EQ(res.accepted, 0u);
    EXPECT_EQ(mem.refCount(mine), 0u); // no partial pins leaked
}

TEST_F(ProtFixture, EnqueueChargesHypervisorTime)
{
    DmaProtection prot(ctx, hv, costs, true);
    auto h = prot.registerRing(nic, cxt, guest->id(), true);
    std::vector<DmaProtection::Request> reqs;
    reqs.push_back(makeReq(mem.allocOne(guest->id())));
    prot.enqueue(h, std::move(reqs), {});
    ctx.events().run();
    sim::Time expected = costs.hv.hypercallOverhead +
                         costs.protValidatePerPage + costs.protPinPerPage +
                         costs.protEnqueuePerDesc;
    EXPECT_EQ(cpu.profile().hypervisor(), expected);
}
