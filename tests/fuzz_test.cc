/**
 * @file
 * Randomized property tests (seeded, deterministic): memory-ownership
 * invariants under random alloc/pin/release interleavings, protection
 * under random malicious enqueue streams, and whole-system determinism
 * across seeds.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/system.hh"
#include "sim/rng.hh"

using namespace cdna;
using namespace cdna::core;

// ----------------------------------------------------- memory fuzzing ----

class MemoryFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MemoryFuzz, OwnershipInvariantsHold)
{
    sim::SimContext ctx;
    mem::PhysMemory memory(ctx, 512);
    sim::Rng rng(GetParam());

    struct Held
    {
        mem::PageNum page;
        std::uint32_t pins = 0;
        bool released = false;
    };
    std::map<mem::PageNum, Held> held; // owned by domain 1
    std::uint64_t initial_free = memory.freePages();

    for (int step = 0; step < 4000; ++step) {
        switch (rng.below(5)) {
          case 0: { // allocate
            auto pages = memory.alloc(1, 1 + rng.below(3));
            for (auto p : pages)
                held[p] = Held{p};
            break;
          }
          case 1: { // pin a random held page
            if (held.empty())
                break;
            auto it = held.begin();
            std::advance(it, rng.below(held.size()));
            memory.getRef(it->first);
            ++it->second.pins;
            break;
          }
          case 2: { // unpin
            if (held.empty())
                break;
            auto it = held.begin();
            std::advance(it, rng.below(held.size()));
            if (it->second.pins > 0) {
                memory.putRef(it->first);
                --it->second.pins;
                if (it->second.released && it->second.pins == 0)
                    held.erase(it);
            }
            break;
          }
          case 3: { // release
            if (held.empty())
                break;
            auto it = held.begin();
            std::advance(it, rng.below(held.size()));
            if (it->second.released)
                break;
            bool immediate = memory.release(it->first);
            // Invariant: release is immediate iff unpinned.
            EXPECT_EQ(immediate, it->second.pins == 0);
            if (immediate)
                held.erase(it);
            else
                it->second.released = true;
            break;
          }
          case 4: { // check invariants on a random held page
            if (held.empty())
                break;
            auto it = held.begin();
            std::advance(it, rng.below(held.size()));
            // Pages we hold (even release-pending) stay ours until the
            // last pin drops.
            EXPECT_EQ(memory.ownerOf(it->first), 1u);
            EXPECT_EQ(memory.refCount(it->first), it->second.pins);
            break;
          }
        }
    }

    // Drain: unpin and release everything; all pages must come back.
    for (auto &[page, h] : held) {
        while (h.pins > 0) {
            memory.putRef(page);
            --h.pins;
        }
        if (!h.released)
            memory.release(page);
    }
    EXPECT_EQ(memory.freePages(), initial_free);
    EXPECT_EQ(memory.violationCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------- protection fuzzing ----

class ProtectionFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ProtectionFuzz, MaliciousEnqueuesNeverCorrupt)
{
    // A guest throws random enqueue requests -- its own pages, the
    // victim's pages, the hypervisor's, unmapped addresses -- at the
    // protected interface while traffic flows.  Whatever it does, no
    // DMA may ever touch memory it does not own.
    SystemConfig cfg = SystemConfig::cdna(2);
    cfg.numNics = 1;
    cfg.seed = GetParam();
    System sys(cfg);
    sys.start();
    sys.ctx().events().runUntil(sim::milliseconds(3));

    auto *attacker = sys.guestDomain(0);
    auto *victim = sys.guestDomain(1);
    CdnaNic &nic = *sys.cdnaNic(0);
    auto cxt = nic.allocContext(attacker->id(), net::MacAddr::fromId(900));
    ASSERT_TRUE(cxt.has_value());
    nic.configureContextRings(
        *cxt, 64, mem::addrOf(sys.mem().allocOne(attacker->id())), 64,
        mem::addrOf(sys.mem().allocOne(attacker->id())));
    auto handle = sys.protection()->registerRing(nic, *cxt,
                                                 attacker->id(), true);

    sim::Rng rng(GetParam() * 977);
    std::vector<mem::PageNum> own;
    for (int i = 0; i < 8; ++i)
        own.push_back(sys.mem().allocOne(attacker->id()));
    std::vector<mem::PageNum> theirs;
    for (int i = 0; i < 8; ++i)
        theirs.push_back(sys.mem().allocOne(victim->id()));

    std::uint32_t legit = 0;
    for (int round = 0; round < 60; ++round) {
        std::vector<DmaProtection::Request> reqs;
        auto n = 1 + rng.below(4);
        bool all_mine = true;
        for (std::uint64_t i = 0; i < n; ++i) {
            DmaProtection::Request req;
            mem::PhysAddr addr;
            switch (rng.below(4)) {
              case 0:
                addr = mem::addrOf(own[rng.below(own.size())]);
                break;
              case 1:
                addr = mem::addrOf(theirs[rng.below(theirs.size())]);
                all_mine = false;
                break;
              case 2:
                addr = mem::addrOf(1u << 30); // far out of range
                all_mine = false;
                break;
              default:
                addr = mem::addrOf(own[rng.below(own.size())]) +
                       rng.below(4000);
                // may spill into the next page, which we may not own
                if (mem::pageOf(addr + 999) != mem::pageOf(addr) &&
                    !sys.mem().ownedBy(mem::pageOf(addr + 999),
                                       attacker->id()))
                    all_mine = false;
                break;
            }
            req.sg = {{addr, 1000}};
            reqs.push_back(std::move(req));
        }
        (void)all_mine;
        sys.protection()->enqueue(handle, std::move(reqs),
                                  [&](DmaProtection::Result r) {
                                      legit += r.accepted;
                                  });
        sys.ctx().events().runUntil(sys.ctx().now() +
                                    sim::microseconds(200));
    }
    sys.ctx().events().runUntil(sys.ctx().now() + sim::milliseconds(5));

    // THE property: no DMA ownership violation, ever.
    EXPECT_EQ(sys.mem().violationCount(), 0u);
    // And the victim's pages are untouched (still owned, unpinned by
    // anything the attacker did after completions drained).
    for (auto p : theirs)
        EXPECT_TRUE(sys.mem().ownedBy(p, victim->id()));
    (void)legit;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtectionFuzz,
                         ::testing::Values(11, 22, 33, 44));

// -------------------------------------------------- system determinism ----

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, RunsAreReproducible)
{
    auto once = [&] {
        SystemConfig cfg = SystemConfig::cdna(2);
        cfg.seed = GetParam();
        System sys(cfg);
        return sys.run(sim::milliseconds(30), sim::milliseconds(60));
    };
    auto a = once();
    auto b = once();
    EXPECT_DOUBLE_EQ(a.mbps, b.mbps);
    EXPECT_DOUBLE_EQ(a.idlePct, b.idlePct);
    EXPECT_DOUBLE_EQ(a.guestIntrPerSec, b.guestIntrPerSec);
    EXPECT_EQ(a.dmaViolations, b.dmaViolations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 7, 42));
