/**
 * @file
 * Transport-subsystem tests: Reno sender mechanics (slow start, fast
 * retransmit, RTO backoff), receiver reassembly and delayed ACKs, the
 * endpoint loopback (including loss recovery), closed-loop full-system
 * invariants (goodput <= wire throughput under every fault knob,
 * monotonic recovery as loss falls), and the golden headline check:
 * with the transport off, the six paper configurations must reproduce
 * the PR-3 reports line for line.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/report.hh"
#include "core/system.hh"
#include "net/transport/tcp.hh"
#include "sim/fault_injector.hh"

using namespace cdna;
using namespace cdna::net;
using namespace cdna::net::transport;

namespace {

constexpr std::uint64_t kSeg = kMss;

/** Pull and commit every segment the windows currently allow. */
std::uint64_t
drain(TcpSenderFlow &f)
{
    std::uint64_t n = 0;
    while (auto seg = f.peekSegment()) {
        f.commitSegment(*seg);
        ++n;
    }
    return n;
}

} // namespace

// ------------------------------------------------------------ sender ----

TEST(TcpSender, SlowStartDoublesCwndPerAckedWindow)
{
    sim::SimContext ctx;
    TcpSenderFlow f(ctx, TcpParams{}, nullptr);
    f.setUnlimited();

    std::uint64_t initial = f.cwnd();
    EXPECT_EQ(initial, 10u * kSeg); // IW10
    EXPECT_EQ(drain(f), 10u);
    EXPECT_EQ(f.inFlight(), 10u * kSeg);

    // One ACK per segment: slow start grows cwnd by one MSS per ACK, so
    // a fully acknowledged window doubles it.
    for (std::uint64_t i = 1; i <= 10; ++i)
        f.onAck(i * kSeg);
    EXPECT_EQ(f.cwnd(), 2 * initial);
    EXPECT_EQ(f.inFlight(), 0u);
    EXPECT_EQ(f.retransSegs, 0u);
    EXPECT_FALSE(f.inRecovery());

    // The doubled window now admits 20 segments.
    EXPECT_EQ(drain(f), 20u);
}

TEST(TcpSender, ThreeDupAcksTriggerFastRetransmit)
{
    sim::SimContext ctx;
    TcpSenderFlow f(ctx, TcpParams{}, nullptr);
    f.setUnlimited();
    ASSERT_EQ(drain(f), 10u);

    f.onAck(kSeg); // segment 0 arrived; 1 is lost
    std::uint64_t flight = f.inFlight();
    f.onAck(kSeg);
    f.onAck(kSeg);
    EXPECT_EQ(f.dupAcksRx, 2u);
    EXPECT_FALSE(f.inRecovery());
    EXPECT_EQ(f.fastRetransmits, 0u);

    f.onAck(kSeg); // third duplicate
    EXPECT_TRUE(f.inRecovery());
    EXPECT_EQ(f.fastRetransmits, 1u);
    EXPECT_EQ(f.ssthresh(), flight / 2);
    EXPECT_EQ(f.cwnd(), f.ssthresh() + 3 * kSeg);

    // The retransmission is offered first, from snd_una.
    auto seg = f.peekSegment();
    ASSERT_TRUE(seg.has_value());
    EXPECT_TRUE(seg->rtx);
    EXPECT_EQ(seg->seq, kSeg);
    f.commitSegment(*seg);
    EXPECT_EQ(f.retransSegs, 1u);

    // A full ACK deflates cwnd to ssthresh and leaves recovery.
    std::uint64_t ssthresh = f.ssthresh();
    f.onAck(10 * kSeg);
    EXPECT_FALSE(f.inRecovery());
    EXPECT_EQ(f.cwnd(), ssthresh);

    // Above ssthresh we are in congestion avoidance: one full-MSS ACK
    // grows cwnd by MSS^2/cwnd, far less than a whole MSS.
    auto next = f.peekSegment();
    ASSERT_TRUE(next.has_value());
    f.commitSegment(*next);
    f.onAck(10 * kSeg + next->len);
    EXPECT_EQ(f.cwnd(), ssthresh + kSeg * kSeg / ssthresh);
}

TEST(TcpSender, RtoBackoffIsExponentialAndDeterministic)
{
    sim::SimContext ctx;
    // The on-ready hook retransmits whatever the window allows, the way
    // the owning endpoint's pump() would; the "network" never answers.
    TcpSenderFlow *fp = nullptr;
    TcpSenderFlow f(ctx, TcpParams{}, [&] {
        while (auto s = fp->peekSegment())
            fp->commitSegment(*s);
    });
    fp = &f;
    f.setUnlimited();
    std::vector<sim::Time> fires;
    f.setEventHook([&](const char *what) {
        if (std::string(what) == "rto")
            fires.push_back(ctx.now());
    });

    auto seg = f.peekSegment();
    ASSERT_TRUE(seg.has_value());
    f.commitSegment(*seg); // t = 0, never acknowledged

    ctx.events().runUntil(sim::milliseconds(200));

    // 3 ms initial RTO, doubling per expiry, clamped at 64 ms:
    // 3, +6, +12, +24, +48, +64 -> fires at 3, 9, 21, 45, 93, 157 ms.
    std::vector<sim::Time> expect = {
        sim::milliseconds(3),  sim::milliseconds(9),  sim::milliseconds(21),
        sim::milliseconds(45), sim::milliseconds(93), sim::milliseconds(157)};
    EXPECT_EQ(fires, expect);
    EXPECT_EQ(f.rtoEvents, 6u);
    EXPECT_EQ(f.retransSegs, 6u); // one go-back-N resend per expiry
    EXPECT_EQ(f.rto(), TcpParams{}.maxRto);
    // cwnd stays collapsed at one MSS without a single ACK.
    EXPECT_EQ(f.cwnd(), kSeg);
}

TEST(TcpSender, OfferBoundedBySendBuffer)
{
    sim::SimContext ctx;
    TcpParams p;
    p.windowBytes = 10 * kSeg;
    TcpSenderFlow f(ctx, p, nullptr);
    EXPECT_EQ(f.offer(100 * kSeg), 10 * kSeg);
    EXPECT_EQ(f.offer(kSeg), 0u); // buffer full until ACKs free space
    EXPECT_EQ(drain(f), 10u);
    f.onAck(3 * kSeg);
    EXPECT_EQ(f.takeFreed(), 3 * kSeg);
    EXPECT_EQ(f.offer(100 * kSeg), 3 * kSeg);
}

// ---------------------------------------------------------- receiver ----

TEST(TcpReceiver, ReassemblesHolesAndDupAcks)
{
    sim::SimContext ctx;
    std::vector<std::uint64_t> acks;
    TcpReceiverFlow r(ctx, TcpParams{},
                      [&](std::uint64_t a) { acks.push_back(a); });

    EXPECT_EQ(r.onSegment(0, kSeg), kSeg);
    EXPECT_TRUE(acks.empty()); // first segment: ACK delayed
    EXPECT_EQ(r.onSegment(kSeg, kSeg), kSeg);
    ASSERT_EQ(acks.size(), 1u); // every second segment ACKs now
    EXPECT_EQ(acks.back(), 2 * kSeg);

    // A hole: buffered, immediate duplicate ACK at rcv_nxt.
    EXPECT_EQ(r.onSegment(3 * kSeg, kSeg), 0u);
    ASSERT_EQ(acks.size(), 2u);
    EXPECT_EQ(acks.back(), 2 * kSeg);
    EXPECT_EQ(r.oooSegs, 1u);

    // Filling the hole delivers both the fill and the buffered data.
    EXPECT_EQ(r.onSegment(2 * kSeg, kSeg), 2 * kSeg);
    EXPECT_EQ(r.rcvNxt(), 4 * kSeg);

    // Entirely old data is discarded but re-ACKed immediately.
    EXPECT_EQ(r.onSegment(0, kSeg), 0u);
    EXPECT_EQ(r.oldSegs, 1u);
    EXPECT_EQ(acks.back(), 4 * kSeg);
}

TEST(TcpReceiver, DelayedAckFiresOnTimeout)
{
    sim::SimContext ctx;
    std::vector<std::uint64_t> acks;
    TcpReceiverFlow r(ctx, TcpParams{},
                      [&](std::uint64_t a) { acks.push_back(a); });
    r.onSegment(0, kSeg);
    EXPECT_TRUE(acks.empty());
    ctx.events().runUntil(sim::milliseconds(1));
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0], kSeg);
}

// ---------------------------------------------------------- endpoint ----

namespace {

/**
 * Two endpoints joined by a fixed-latency wire, with an optional
 * deterministic drop predicate on data segments (the loss model for
 * recovery tests).
 */
struct Loopback
{
    sim::SimContext ctx;
    TcpEndpoint a{ctx, "ep_a", TcpParams{}};
    TcpEndpoint b{ctx, "ep_b", TcpParams{}};
    MacAddr amac = MacAddr::fromId(1);
    MacAddr bmac = MacAddr::fromId(2);
    std::function<bool(const TcpEndpoint::SegmentOut &)> dropData;
    std::uint64_t remaining = 0;

    explicit Loopback(std::uint64_t total_bytes)
        : remaining(total_bytes)
    {
        a.setSegmentTx([this](const TcpEndpoint::SegmentOut &so) {
            if (dropData && dropData(so))
                return true; // "sent", lost on the wire
            Packet p;
            p.src = amac;
            p.dst = so.dst;
            p.flowId = so.flowId;
            p.seq = so.seq;
            p.payloadBytes = so.len;
            p.tcpData = true;
            ctx.events().schedule(sim::microseconds(10),
                                  [this, p] { b.onPacket(p); });
            return true;
        });
        b.setAckTx([this](const TcpEndpoint::AckOut &ao) {
            Packet p;
            p.src = bmac;
            p.dst = ao.dst;
            p.flowId = ao.flowId;
            p.ackNo = ao.ackNo;
            p.tcpAck = true;
            ctx.events().schedule(sim::microseconds(10),
                                  [this, p] { a.onPacket(p); });
            return true;
        });
        a.openSender(7, bmac);
        a.setBufFreed([this](std::uint64_t flow, std::uint64_t) {
            refill(flow);
        });
    }

    /** Kick the transfer off (after any drop predicate is installed). */
    void
    start()
    {
        refill(7);
    }

    void
    refill(std::uint64_t flow)
    {
        if (remaining > 0)
            remaining -= a.offer(flow, remaining);
    }
};

} // namespace

TEST(TcpEndpoint, LoopbackTransfersWholeStream)
{
    const std::uint64_t total = 1'000'000;
    Loopback l(total);
    l.start();
    l.ctx.events().run();
    EXPECT_EQ(l.b.deliveredBytes(), total);
    EXPECT_EQ(l.a.retransSegs(), 0u);
    EXPECT_EQ(l.a.rtoEvents(), 0u);
    EXPECT_EQ(l.a.senderFlow(7)->inFlight(), 0u);
    // Piecewise offers can split a handful of segments below the MSS,
    // so the count may slightly exceed ceil(total/MSS).
    EXPECT_GE(l.a.segsSent(), (total + kSeg - 1) / kSeg);
    EXPECT_LE(l.a.segsSent(), (total + kSeg - 1) / kSeg + 10);
}

TEST(TcpEndpoint, SingleLossRecoversByFastRetransmit)
{
    const std::uint64_t total = 1'000'000;
    Loopback l(total);
    bool dropped = false;
    l.dropData = [&](const TcpEndpoint::SegmentOut &so) {
        if (!dropped && so.seq == 5 * kSeg) {
            dropped = true;
            return true;
        }
        return false;
    };
    l.start();
    l.ctx.events().run();
    EXPECT_TRUE(dropped);
    EXPECT_EQ(l.b.deliveredBytes(), total);
    EXPECT_EQ(l.a.fastRetransmits(), 1u);
    EXPECT_GE(l.a.retransSegs(), 1u);
    EXPECT_EQ(l.a.rtoEvents(), 0u);
}

TEST(TcpEndpoint, TailLossRecoversByRto)
{
    const std::uint64_t total = 100 * kSeg;
    Loopback l(total);
    bool dropped = false;
    l.dropData = [&](const TcpEndpoint::SegmentOut &so) {
        // Lose the final segment once: no later data means no duplicate
        // ACKs, so only the RTO timer can recover it.
        if (!dropped && so.seq + so.len == total) {
            dropped = true;
            return true;
        }
        return false;
    };
    l.start();
    l.ctx.events().run();
    EXPECT_TRUE(dropped);
    EXPECT_EQ(l.b.deliveredBytes(), total);
    EXPECT_GE(l.a.rtoEvents(), 1u);
    EXPECT_GE(l.a.retransSegs(), 1u);
}

// --------------------------------------------------------- eth + csum ----

TEST(TcpFrames, CorruptedFrameDeliveredWithIntactCleared)
{
    sim::SimContext ctx;
    sim::FaultRates rates;
    rates.frameCorrupt = 1.0;
    sim::FaultInjector fi(ctx, "faults", 1, rates);
    ctx.setFaultInjector(&fi);

    EthLink link(ctx, "eth");
    struct Sink : LinkEndpoint
    {
        std::vector<Packet> got;
        void receiveFrame(Packet p) override { got.push_back(std::move(p)); }
    } sink;
    link.bind(sink);
    Packet p;
    p.payloadBytes = kMss;
    ASSERT_TRUE(p.intact);
    link.port(1).send(std::move(p));
    ctx.events().run();
    // Corruption consumes wire and receiver resources: the frame is
    // delivered, flagged, and left for the receiver's checksum check.
    ASSERT_EQ(sink.got.size(), 1u);
    EXPECT_FALSE(sink.got[0].intact);
}

// ------------------------------------------------------- full system ----

namespace {

core::Report
runTcp(core::SystemConfig cfg, sim::Time warmup, sim::Time measure)
{
    core::System sys(std::move(cfg));
    return sys.run(warmup, measure);
}

} // namespace

TEST(TcpSystem, CleanWireSaturatesWithoutRetransmits)
{
    auto r = runTcp(core::SystemConfig::cdna(1).transport(core::kTcp),
                    sim::milliseconds(40), sim::milliseconds(120));
    EXPECT_GT(r.mbps, 1800.0);
    EXPECT_EQ(r.tcpRetransSegs, 0u);
    EXPECT_EQ(r.tcpRtoEvents, 0u);
    EXPECT_EQ(r.rxDropsBadCsum, 0u);
    EXPECT_NE(r.label.find("/tcp"), std::string::npos);
}

TEST(TcpSystem, ReceiveDirectionRunsClosedLoop)
{
    auto r = runTcp(
        core::SystemConfig::cdna(1).receive().transport(core::kTcp),
        sim::milliseconds(40), sim::milliseconds(120));
    EXPECT_GT(r.mbps, 1800.0);
    EXPECT_EQ(r.tcpRetransSegs, 0u);
}

TEST(TcpSystem, DeterministicAcrossRuns)
{
    auto cfg = core::SystemConfig::cdna(2).transport(core::kTcp).withFaults(
        core::FaultPlan{}.dropping(0.002));
    auto a = runTcp(cfg, sim::milliseconds(20), sim::milliseconds(80));
    auto b = runTcp(cfg, sim::milliseconds(20), sim::milliseconds(80));
    EXPECT_DOUBLE_EQ(a.mbps, b.mbps);
    EXPECT_EQ(a.tcpRetransSegs, b.tcpRetransSegs);
    EXPECT_EQ(a.tcpFastRetransmits, b.tcpFastRetransmits);
    EXPECT_EQ(a.tcpRtoEvents, b.tcpRtoEvents);
}

TEST(TcpSystem, GoodputNeverExceedsWireUnderEveryFaultKnob)
{
    // Cumulative accounting (no warmup): everything the application
    // counted as delivered must have crossed the wire first, whatever
    // the fault injector does to frames or DMA timing.
    struct Case
    {
        const char *name;
        core::FaultPlan plan;
    };
    std::vector<Case> cases = {
        {"drop", core::FaultPlan{}.dropping(0.005)},
        {"corrupt", core::FaultPlan{}.corrupting(0.005)},
        {"dup", core::FaultPlan{}.duplicating(0.005)},
        {"dma-delay", core::FaultPlan{}.delayingDma(0.01, 25.0)},
    };
    for (const auto &c : cases) {
        auto r = runTcp(core::SystemConfig::cdna(1)
                            .transport(core::kTcp)
                            .withFaults(c.plan),
                        0, sim::milliseconds(120));
        EXPECT_LE(r.mbps, r.wireMbps + 0.01) << c.name;
        EXPECT_GT(r.mbps, 0.0) << c.name;
    }
}

TEST(TcpSystem, DropsForceRetransmitsInBothArchitectures)
{
    for (auto make : {&core::SystemConfig::cdna, &core::SystemConfig::xenIntel}) {
        auto r = runTcp(make(1).transport(core::kTcp).withFaults(
                            core::FaultPlan{}.dropping(0.001)),
                        sim::milliseconds(20), sim::milliseconds(150));
        EXPECT_GT(r.tcpRetransSegs, 0u) << r.label;
        EXPECT_GT(r.tcpDupAcks, 0u) << r.label;
    }
}

TEST(TcpSystem, CorruptionDroppedAtChecksumAndRetransmitted)
{
    auto r = runTcp(core::SystemConfig::cdna(1).transport(core::kTcp)
                        .withFaults(core::FaultPlan{}.corrupting(0.002)),
                    sim::milliseconds(20), sim::milliseconds(150));
    EXPECT_GT(r.rxDropsBadCsum, 0u);
    EXPECT_GT(r.tcpRetransSegs, 0u);
    // Every corrupted frame is discarded at the receiver's checksum
    // check; the window edges can split a corruption from its drop.
    auto diff = static_cast<std::int64_t>(r.rxDropsBadCsum) -
                static_cast<std::int64_t>(r.faultFramesCorrupted);
    EXPECT_LE(std::abs(diff), 2);
}

TEST(TcpSystem, GoodputRecoversMonotonicallyAsLossFalls)
{
    double at1pct =
        runTcp(core::SystemConfig::cdna(1).transport(core::kTcp).withFaults(
                   core::FaultPlan{}.dropping(0.01)),
               sim::milliseconds(20), sim::milliseconds(150))
            .mbps;
    double at01pct =
        runTcp(core::SystemConfig::cdna(1).transport(core::kTcp).withFaults(
                   core::FaultPlan{}.dropping(0.001)),
               sim::milliseconds(20), sim::milliseconds(150))
            .mbps;
    double clean = runTcp(core::SystemConfig::cdna(1).transport(core::kTcp),
                          sim::milliseconds(20), sim::milliseconds(150))
                       .mbps;
    EXPECT_LT(at1pct, at01pct);
    EXPECT_LT(at01pct, clean);
}

// ------------------------------------------------- golden headline ----

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

/**
 * The six paper headline configurations run open-loop by default; their
 * reports must stay bit-identical to the PR-3 goldens at the same seed.
 * Schema 2 only appends keys at block ends, so every golden line except
 * the schema version must appear verbatim in the regenerated report.
 */
TEST(TcpGolden, HeadlineConfigsUnchangedWithTransportOff)
{
    struct Cfg
    {
        const char *file;
        core::SystemConfig cfg;
    };
    std::vector<Cfg> cfgs = {
        {"headline-xen-intel-tx.json", core::SystemConfig::xenIntel(1)},
        {"headline-xen-intel-rx.json",
         core::SystemConfig::xenIntel(1).receive()},
        {"headline-xen-rice-tx.json", core::SystemConfig::xenRice(1)},
        {"headline-xen-rice-rx.json",
         core::SystemConfig::xenRice(1).receive()},
        {"headline-cdna-rice-tx.json", core::SystemConfig::cdna(1)},
        {"headline-cdna-rice-rx.json", core::SystemConfig::cdna(1).receive()},
    };
    for (auto &c : cfgs) {
        std::string golden =
            readFile(std::string(CDNA_GOLDEN_DIR) + "/" + c.file);
        ASSERT_FALSE(golden.empty()) << c.file;
        core::System sys(c.cfg);
        auto r = sys.run(sim::milliseconds(50), sim::milliseconds(200));
        std::string json = core::reportToJson(r);
        std::istringstream lines(golden);
        std::string line;
        while (std::getline(lines, line)) {
            if (line.find("\"schema_version\"") != std::string::npos)
                continue;
            EXPECT_NE(json.find(line), std::string::npos)
                << c.file << ": missing line: " << line;
        }
        // Schema 3 appended the failure-domain counters and the
        // availability arrays, schema 4 the context-paging counters,
        // schema 5 the switch-fabric counters, schema 6 the
        // RPC/workload metrics, and schema 7 the software-passthrough
        // validator counters; a fault-free headline run on a dedicated
        // link without oversubscription or a workload spec must report
        // every one of them as zero (the machineries are inert unless
        // enabled, and none of these headline configs run swpt).
        for (const char *key :
             {"\"schema_version\": 7", "\"driver_domain_kills\": 0",
              "\"firmware_reboots\": 0", "\"fe_reconnects\": 0",
              "\"grants_revoked\": 0", "\"pages_quarantined\": 0",
              "\"quarantine_released\": 0", "\"mailbox_throttled\": 0",
              "\"outage_packets_lost\": 0", "\"cxt_page_traps\": 0",
              "\"cxt_evictions\": 0", "\"cxt_page_ins\": 0",
              "\"cxt_resident_peak\"", "\"switch_drops\": 0",
              "\"switch_drop_bytes\": 0",
              "\"switch_queue_peak_bytes\": 0",
              "\"rpc_lat_mean_us\": 0.0000", "\"rpc_lat_p999_us\": 0.0000",
              "\"rpc_offered_rps\": 0.0000", "\"rpc_achieved_rps\": 0.0000",
              "\"rpc_requests\": 0", "\"rpc_responses\": 0",
              "\"rpc_timeouts\": 0", "\"flows_started\": 0",
              "\"flows_completed\": 0", "\"swpt_validation_us\": 0.0000",
              "\"swpt_doorbell_traps\": 0", "\"swpt_desc_validated\": 0",
              "\"swpt_desc_rejected\": 0",
              "\"per_guest_downtime_us\"", "\"per_guest_ttfp_us\""})
            EXPECT_NE(json.find(key), std::string::npos)
                << c.file << ": missing appended schema key: " << key;
    }
}
